#include "mpi/mpi.hpp"

#include <stdexcept>
#include <string>

#include <algorithm>
#include <array>

#include "mpi/rank_comm.hpp"

namespace mv2gnc::mpisim {

Communicator::Communicator(detail::RankComm* impl)
    : impl_(impl), group_(impl->world_group()) {}

Communicator::Communicator(detail::RankComm* impl,
                           std::shared_ptr<const detail::CommGroup> group)
    : impl_(impl), group_(std::move(group)) {}

detail::RankComm& Communicator::impl() const {
  if (impl_ == nullptr) {
    throw std::logic_error("null Communicator used");
  }
  return *impl_;
}

const detail::CommGroup& Communicator::group() const {
  if (!group_) throw std::logic_error("null Communicator used");
  return *group_;
}

void Communicator::localize(Status* status) const {
  if (status != nullptr && status->source != kAnySource) {
    status->source = group().to_comm_rank(status->source);
  }
}

int Communicator::rank() const { return group().my_rank; }
int Communicator::size() const { return group().size(); }

namespace {

int checked_peer(const detail::CommGroup& g, int r, const char* api) {
  if (r < 0 || r >= g.size()) {
    throw std::invalid_argument(std::string(api) + ": bad rank " +
                                std::to_string(r));
  }
  return g.world[static_cast<std::size_t>(r)];
}

}  // namespace

namespace {

void check_user_tag(int tag, const char* api) {
  if (tag < 0) {
    throw std::invalid_argument(std::string(api) +
                                ": negative tags are reserved (got " +
                                std::to_string(tag) + ")");
  }
}

}  // namespace

void Communicator::send(const void* buf, int count, const Datatype& dtype,
                        int dst, int tag) {
  check_user_tag(tag, "send");
  ++impl().api_stats().send;
  Request r = impl().isend(buf, count, dtype, checked_peer(group(), dst, "send"),
                           tag, group().context);
  impl().wait(r, nullptr);
}

void Communicator::recv(void* buf, int count, const Datatype& dtype, int src,
                        int tag, Status* status) {
  if (tag != kAnyTag) check_user_tag(tag, "recv");
  ++impl().api_stats().recv;
  const int world_src =
      (src == kAnySource) ? kAnySource : checked_peer(group(), src, "recv");
  Request r = impl().irecv(buf, count, dtype, world_src, tag,
                           group().context);
  impl().wait(r, status);
  localize(status);
}

Request Communicator::isend(const void* buf, int count, const Datatype& dtype,
                            int dst, int tag) {
  check_user_tag(tag, "isend");
  ++impl().api_stats().isend;
  return impl().isend(buf, count, dtype, checked_peer(group(), dst, "isend"),
                      tag, group().context);
}

Request Communicator::irecv(void* buf, int count, const Datatype& dtype,
                            int src, int tag) {
  if (tag != kAnyTag) check_user_tag(tag, "irecv");
  ++impl().api_stats().irecv;
  const int world_src =
      (src == kAnySource) ? kAnySource : checked_peer(group(), src, "irecv");
  return impl().irecv(buf, count, dtype, world_src, tag, group().context);
}

Request Communicator::isend_on(cusim::Stream& stream, const void* buf,
                               int count, const Datatype& dtype, int dst,
                               int tag) {
  check_user_tag(tag, "isend_on");
  ++impl().api_stats().isend;
  return impl().isend_on(stream, buf, count, dtype,
                         checked_peer(group(), dst, "isend_on"), tag,
                         group().context);
}

Request Communicator::irecv_on(cusim::Stream& stream, void* buf, int count,
                               const Datatype& dtype, int src, int tag) {
  if (tag != kAnyTag) check_user_tag(tag, "irecv_on");
  ++impl().api_stats().irecv;
  const int world_src =
      (src == kAnySource) ? kAnySource : checked_peer(group(), src, "irecv_on");
  return impl().irecv_on(stream, buf, count, dtype, world_src, tag,
                         group().context);
}

void Communicator::wait(Request& req, Status* status) {
  ++impl().api_stats().wait;
  impl().wait(req, status);
  localize(status);
}

bool Communicator::test(Request& req, Status* status) {
  const bool done = impl().test(req, status);
  if (done) localize(status);
  return done;
}

void Communicator::waitall(std::span<Request> reqs) {
  ++impl().api_stats().waitall;
  for (Request& r : reqs) impl().wait(r, nullptr);
}

void Communicator::sendrecv(const void* sendbuf, int sendcount,
                            const Datatype& sendtype, int dst, int sendtag,
                            void* recvbuf, int recvcount,
                            const Datatype& recvtype, int src, int recvtag,
                            Status* status) {
  check_user_tag(sendtag, "sendrecv");
  if (recvtag != kAnyTag) check_user_tag(recvtag, "sendrecv");
  const int world_src = (src == kAnySource)
                            ? kAnySource
                            : checked_peer(group(), src, "sendrecv");
  Request rr = impl().irecv(recvbuf, recvcount, recvtype, world_src, recvtag,
                            group().context);
  Request sr = impl().isend(sendbuf, sendcount, sendtype,
                            checked_peer(group(), dst, "sendrecv"), sendtag,
                            group().context);
  impl().wait(sr, nullptr);
  impl().wait(rr, status);
  localize(status);
}

// ---------------------------------------------------------------------------
// Persistent requests
// ---------------------------------------------------------------------------

struct PersistentRequest::Init {
  bool is_send = false;
  void* buf = nullptr;
  int count = 0;
  Datatype dtype;
  int peer = -1;
  int tag = 0;
  Communicator comm;
  Request active;
  bool in_flight = false;

  // -- persistent plan cache (persistent_plan_cache, docs/STREAMS.md) ----
  /// The frozen argument list's message view, built on the first start():
  /// its pack plan is resolved once and every re-fire reuses it.
  bool primed = false;
  core::MsgView view;
  /// Rendezvous path decision + chunk table + pack cursors, refilled only
  /// when the inputs they were derived from change (e.g. a transport
  /// failover flips the IPC route).
  core::RndvCache cache;

  /// Fill `opts` with the cached view/plan when the tunable is on.
  detail::XferOpts cached_opts() {
    detail::RankComm& rc = comm.impl();
    detail::XferOpts opts;
    if (rc.tunables().persistent_plan_cache) {
      if (!primed) {
        view = core::MsgView::make(buf, count, dtype, rc.memory_registry());
        primed = true;
      }
      opts.view = &view;
      opts.cache = &cache;
      ++rc.trigger_stats().persistent_starts;
    }
    return opts;
  }
};

void PersistentRequest::start() {
  if (!impl_) throw std::logic_error("start() on null PersistentRequest");
  Init& s = *impl_;
  if (s.in_flight) {
    throw std::logic_error(
        "PersistentRequest::start: previous round not completed");
  }
  detail::RankComm& rc = s.comm.impl();
  const detail::XferOpts opts = s.cached_opts();
  const int ctx = s.comm.group().context;
  if (s.is_send) {
    ++rc.api_stats().isend;
    s.active = rc.isend(s.buf, s.count, s.dtype,
                        checked_peer(s.comm.group(), s.peer, "start"), s.tag,
                        ctx, opts);
  } else {
    ++rc.api_stats().irecv;
    const int world_src = (s.peer == kAnySource)
                              ? kAnySource
                              : checked_peer(s.comm.group(), s.peer, "start");
    s.active = rc.irecv(s.buf, s.count, s.dtype, world_src, s.tag, ctx, opts);
  }
  s.in_flight = true;
}

void PersistentRequest::start_on(cusim::Stream& stream) {
  if (!impl_) throw std::logic_error("start_on() on null PersistentRequest");
  Init& s = *impl_;
  if (s.in_flight) {
    throw std::logic_error(
        "PersistentRequest::start: previous round not completed");
  }
  detail::RankComm& rc = s.comm.impl();
  detail::XferOpts opts = s.cached_opts();
  const int ctx = s.comm.group().context;
  if (s.is_send) {
    ++rc.api_stats().isend;
    s.active = rc.isend_on(stream, s.buf, s.count, s.dtype,
                           checked_peer(s.comm.group(), s.peer, "start_on"),
                           s.tag, ctx, std::move(opts));
  } else {
    ++rc.api_stats().irecv;
    const int world_src = (s.peer == kAnySource)
                              ? kAnySource
                              : checked_peer(s.comm.group(), s.peer, "start_on");
    s.active = rc.irecv_on(stream, s.buf, s.count, s.dtype, world_src, s.tag,
                           ctx, std::move(opts));
  }
  s.in_flight = true;
}

void PersistentRequest::wait(Status* status) {
  if (!impl_) throw std::logic_error("wait() on null PersistentRequest");
  Init& s = *impl_;
  if (!s.in_flight) {
    throw std::logic_error("PersistentRequest::wait: not started");
  }
  s.comm.wait(s.active, status);
  s.in_flight = false;
}

bool PersistentRequest::test(Status* status) {
  if (!impl_) throw std::logic_error("test() on null PersistentRequest");
  Init& s = *impl_;
  if (!s.in_flight) {
    throw std::logic_error("PersistentRequest::test: not started");
  }
  if (s.comm.test(s.active, status)) {
    s.in_flight = false;
    return true;
  }
  return false;
}

PersistentRequest Communicator::send_init(const void* buf, int count,
                                          const Datatype& dtype, int dst,
                                          int tag) {
  check_user_tag(tag, "send_init");
  PersistentRequest r;
  r.impl_ = std::make_shared<PersistentRequest::Init>();
  r.impl_->is_send = true;
  r.impl_->buf = const_cast<void*>(buf);
  r.impl_->count = count;
  r.impl_->dtype = dtype;
  r.impl_->peer = dst;
  r.impl_->tag = tag;
  r.impl_->comm = *this;
  return r;
}

PersistentRequest Communicator::recv_init(void* buf, int count,
                                          const Datatype& dtype, int src,
                                          int tag) {
  if (tag != kAnyTag) check_user_tag(tag, "recv_init");
  PersistentRequest r;
  r.impl_ = std::make_shared<PersistentRequest::Init>();
  r.impl_->is_send = false;
  r.impl_->buf = buf;
  r.impl_->count = count;
  r.impl_->dtype = dtype;
  r.impl_->peer = src;
  r.impl_->tag = tag;
  r.impl_->comm = *this;
  return r;
}

void Communicator::startall(std::span<PersistentRequest> reqs) {
  for (PersistentRequest& r : reqs) r.start();
}

void Communicator::startall_on(cusim::Stream& stream,
                               std::span<PersistentRequest> reqs) {
  for (PersistentRequest& r : reqs) r.start_on(stream);
}

void Communicator::waitall_persistent(std::span<PersistentRequest> reqs) {
  for (PersistentRequest& r : reqs) r.wait();
}

std::optional<int> Status::count(const Datatype& dtype) const {
  if (!dtype.valid()) throw std::invalid_argument("Status::count: null type");
  const std::size_t elem = dtype.size();
  if (elem == 0) return bytes == 0 ? std::optional<int>(0) : std::nullopt;
  if (bytes % elem != 0) return std::nullopt;
  return static_cast<int>(bytes / elem);
}

bool Communicator::iprobe(int src, int tag, Status* status) {
  if (tag != kAnyTag) check_user_tag(tag, "iprobe");
  const int world_src =
      (src == kAnySource) ? kAnySource : checked_peer(group(), src, "iprobe");
  const bool found = impl().iprobe(world_src, tag, status, group().context);
  if (found) localize(status);
  return found;
}

void Communicator::probe(int src, int tag, Status* status) {
  if (tag != kAnyTag) check_user_tag(tag, "probe");
  const int world_src =
      (src == kAnySource) ? kAnySource : checked_peer(group(), src, "probe");
  impl().probe(world_src, tag, status, group().context);
  localize(status);
}

std::size_t Communicator::pack_size(int count, const Datatype& dtype) const {
  if (count < 0) throw std::invalid_argument("pack_size: negative count");
  return dtype.size() * static_cast<std::size_t>(count);
}

void Communicator::pack(const void* inbuf, int count, const Datatype& dtype,
                        void* outbuf, std::size_t outsize,
                        std::size_t& position) {
  impl().pack(inbuf, count, dtype, outbuf, outsize, position);
}

void Communicator::unpack(const void* inbuf, std::size_t insize,
                          std::size_t& position, void* outbuf, int count,
                          const Datatype& dtype) {
  impl().unpack(inbuf, insize, position, outbuf, count, dtype);
}

void Communicator::barrier() { impl().barrier(group()); }

void Communicator::gather(const void* sendbuf, int count,
                          const Datatype& dtype, void* recvbuf, int root) {
  if (root < 0 || root >= size()) {
    throw std::invalid_argument("gather: bad root rank");
  }
  impl().gather(sendbuf, count, dtype, recvbuf, root, group());
}

void Communicator::scatter(const void* sendbuf, void* recvbuf, int count,
                           const Datatype& dtype, int root) {
  if (root < 0 || root >= size()) {
    throw std::invalid_argument("scatter: bad root rank");
  }
  impl().scatter(sendbuf, recvbuf, count, dtype, root, group());
}

void Communicator::allgather(const void* sendbuf, int count,
                             const Datatype& dtype, void* recvbuf) {
  impl().allgather(sendbuf, count, dtype, recvbuf, group());
}

void Communicator::alltoall(const void* sendbuf, void* recvbuf, int count,
                            const Datatype& dtype) {
  impl().alltoall(sendbuf, recvbuf, count, dtype, group());
}

void Communicator::bcast(void* buf, int count, const Datatype& dtype,
                         int root) {
  if (root < 0 || root >= size()) {
    throw std::invalid_argument("bcast: bad root rank");
  }
  impl().bcast(buf, count, dtype, root, group());
}

void Communicator::allreduce_sum(const double* sendbuf, double* recvbuf,
                                 int count) {
  impl().allreduce_doubles(sendbuf, recvbuf, count, /*take_max=*/false,
                           group());
}

void Communicator::allreduce_max(const double* sendbuf, double* recvbuf,
                                 int count) {
  impl().allreduce_doubles(sendbuf, recvbuf, count, /*take_max=*/true,
                           group());
}

Communicator Communicator::split(int color, int key) {
  const detail::CommGroup& g = group();
  const int p = g.size();
  // Allgather (color, key, context hint) over the parent communicator.
  static Datatype int_t = [] {
    Datatype t = Datatype::int32();
    t.commit();
    return t;
  }();
  std::array<std::int32_t, 3> mine{color, key, impl().next_context_hint()};
  std::vector<std::int32_t> all(static_cast<std::size_t>(p) * 3);
  impl().allgather(mine.data(), 3, int_t, all.data(), g);

  // Context base: one past the largest hint anywhere in the parent, so all
  // members agree and fresh ids never collide with live ones.
  int base = 0;
  for (int i = 0; i < p; ++i) {
    base = std::max(base, all[static_cast<std::size_t>(i) * 3 + 2]);
  }
  // Sorted distinct colors define the new context of each subgroup.
  std::vector<int> colors;
  for (int i = 0; i < p; ++i) {
    const int c = all[static_cast<std::size_t>(i) * 3];
    if (c >= 0 && std::find(colors.begin(), colors.end(), c) == colors.end()) {
      colors.push_back(c);
    }
  }
  std::sort(colors.begin(), colors.end());
  impl().reserve_contexts(base, static_cast<int>(colors.size()));
  if (color < 0) return Communicator{};  // kUndefinedColor: null comm

  // Members of my color, ordered by (key, parent rank).
  struct Member {
    int key, parent_rank;
  };
  std::vector<Member> members;
  for (int i = 0; i < p; ++i) {
    if (all[static_cast<std::size_t>(i) * 3] == color) {
      members.push_back(Member{all[static_cast<std::size_t>(i) * 3 + 1], i});
    }
  }
  std::sort(members.begin(), members.end(), [](const Member& a,
                                               const Member& b) {
    return a.key != b.key ? a.key < b.key : a.parent_rank < b.parent_rank;
  });
  auto ng = std::make_shared<detail::CommGroup>();
  const auto color_idx = static_cast<int>(
      std::find(colors.begin(), colors.end(), color) - colors.begin());
  ng->context = base + color_idx;
  for (std::size_t i = 0; i < members.size(); ++i) {
    ng->world.push_back(
        g.world[static_cast<std::size_t>(members[i].parent_rank)]);
    if (members[i].parent_rank == g.my_rank) {
      ng->my_rank = static_cast<int>(i);
    }
  }
  return Communicator(impl_, std::move(ng));
}

Communicator Communicator::dup() {
  // A dup is a split where everyone shares one color, keyed by rank.
  return split(0, rank());
}

const ApiStats& Communicator::api_stats() const {
  return impl().api_stats();
}

void Communicator::reset_api_stats() { impl().api_stats() = ApiStats{}; }

double Communicator::wtime() const {
  return sim::to_sec(impl().engine().now());
}

}  // namespace mv2gnc::mpisim
