// MPI derived-datatype engine.
//
// Implements the MPI type-constructor algebra the paper's workloads use —
// contiguous, vector/hvector, indexed/hindexed/indexed_block, struct,
// subarray, resized — over a small set of predefined types. A committed
// type exposes:
//   * size()/extent()/lower_bound() per the MPI type map rules;
//   * a flattened segment list (byte offset + length per contiguous run,
//     adjacent runs merged) — the representation both the host pack path
//     and the GPU offload path consume;
//   * vector-pattern detection (uniform block length + stride), which is
//     what lets the GPU path drive cudaMemcpy2D for pack/unpack — exactly
//     the datatype-processing offload of paper §IV-A;
//   * full and byte-ranged pack/unpack, the ranged form being what the
//     64 KB chunked pipeline of §IV-B slices on.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace mv2gnc::mpisim {

/// One contiguous run of bytes within a single type element, relative to
/// the element base address.
struct Segment {
  std::int64_t offset = 0;
  std::size_t length = 0;

  friend bool operator==(const Segment&, const Segment&) = default;
};

/// Detected uniform strided layout: `count` blocks of `block_bytes` every
/// `stride_bytes`. This maps 1:1 onto a cudaMemcpy2D call.
struct VectorPattern {
  std::size_t count = 0;
  std::size_t block_bytes = 0;
  std::int64_t stride_bytes = 0;

  friend bool operator==(const VectorPattern&, const VectorPattern&) = default;
};

/// Array storage order for subarray types.
enum class ArrayOrder { kC, kFortran };

/// Resumable position within the packed stream of a (type, count) message:
/// element index, segment index within that element, and bytes already
/// consumed of that segment. A cursor fixes the starting point of a
/// byte-ranged pack/unpack so chunked pipelines resume in O(1) instead of
/// re-searching the prefix table per chunk.
struct PackCursor {
  std::size_t elem = 0;
  std::size_t seg = 0;
  std::size_t skip = 0;

  friend bool operator==(const PackCursor&, const PackCursor&) = default;
};

namespace detail {
struct TypeNode;
}

/// Value-semantics handle to an immutable type tree (like an MPI_Datatype
/// handle). Default-constructed handles are null and unusable.
class Datatype {
 public:
  Datatype() = default;

  // -- predefined types -------------------------------------------------
  static Datatype byte();     ///< MPI_BYTE
  static Datatype int32();    ///< MPI_INT
  static Datatype int64();    ///< MPI_LONG_LONG
  static Datatype float32();  ///< MPI_FLOAT
  static Datatype float64();  ///< MPI_DOUBLE

  // -- constructors (MPI_Type_*) -----------------------------------------
  static Datatype contiguous(int count, const Datatype& old);
  /// stride counted in elements of `old` (MPI_Type_vector).
  static Datatype vector(int count, int blocklength, int stride,
                         const Datatype& old);
  /// stride counted in bytes (MPI_Type_create_hvector).
  static Datatype hvector(int count, int blocklength,
                          std::int64_t stride_bytes, const Datatype& old);
  /// displacements counted in elements of `old` (MPI_Type_indexed).
  static Datatype indexed(std::span<const int> blocklengths,
                          std::span<const int> displacements,
                          const Datatype& old);
  /// displacements counted in bytes (MPI_Type_create_hindexed).
  static Datatype hindexed(std::span<const int> blocklengths,
                           std::span<const std::int64_t> displacements_bytes,
                           const Datatype& old);
  /// equal block lengths (MPI_Type_create_indexed_block).
  static Datatype indexed_block(int blocklength,
                                std::span<const int> displacements,
                                const Datatype& old);
  /// heterogeneous struct (MPI_Type_create_struct).
  static Datatype create_struct(std::span<const int> blocklengths,
                                std::span<const std::int64_t> displacements,
                                std::span<const Datatype> types);
  /// n-dimensional subarray (MPI_Type_create_subarray).
  static Datatype subarray(std::span<const int> sizes,
                           std::span<const int> subsizes,
                           std::span<const int> starts, ArrayOrder order,
                           const Datatype& old);
  /// override lb/extent (MPI_Type_create_resized).
  static Datatype resized(const Datatype& old, std::int64_t lb,
                          std::int64_t extent);

  // -- queries ------------------------------------------------------------
  bool valid() const { return node_ != nullptr; }
  /// Bytes of actual data in one element (MPI_Type_size).
  std::size_t size() const;
  /// Span covered by one element, ub - lb (MPI_Type_get_extent).
  std::int64_t extent() const;
  std::int64_t lower_bound() const;
  std::int64_t upper_bound() const { return lower_bound() + extent(); }
  /// True when one element is a single dense run at offset 0 whose length
  /// equals the extent (no holes anywhere).
  bool is_contiguous() const;
  /// Human-readable constructor tree, for diagnostics.
  std::string describe() const;

  // -- commit & flattened access ------------------------------------------
  /// MPI_Type_commit: builds the flattened representation. Communication
  /// and pack/unpack require a committed type.
  void commit();
  bool committed() const;

  /// Flattened runs of one element (requires commit).
  const std::vector<Segment>& segments() const;
  /// Number of contiguous runs in `count` elements.
  std::size_t total_segments(int count) const;
  /// Uniform strided pattern across `count` consecutive elements, if the
  /// flattened layout is expressible as one (requires commit).
  std::optional<VectorPattern> vector_pattern(int count) const;

  // -- host pack/unpack -----------------------------------------------------
  /// Gather `count` elements starting at `src` into the dense buffer `dst`
  /// (dst must hold count*size() bytes). Requires commit.
  void pack(const void* src, int count, void* dst) const;
  /// Scatter the dense buffer `src` into `count` elements at `dst`.
  void unpack(const void* src, int count, void* dst) const;
  /// Gather only packed-stream bytes [pack_offset, pack_offset+nbytes) of
  /// the count-element message into `dst` — the chunked-pipeline slice.
  void pack_bytes(const void* src, int count, std::size_t pack_offset,
                  std::size_t nbytes, void* dst) const;
  /// Scatter `nbytes` of packed stream starting at packed-stream offset
  /// `pack_offset` from `src` into the typed buffer `dst`.
  void unpack_bytes(const void* src, int count, std::size_t pack_offset,
                    std::size_t nbytes, void* dst) const;

  // -- resumable cursors ----------------------------------------------------
  /// Locate packed-stream offset `pack_offset` of a count-element message
  /// (one prefix-table search; requires commit).
  PackCursor cursor_at(int count, std::size_t pack_offset) const;
  /// pack_bytes starting at a precomputed cursor: O(segments in range),
  /// zero searches. The cursor must address a message of >= count elements.
  void pack_bytes_from(const PackCursor& cur, const void* src, int count,
                       std::size_t nbytes, void* dst) const;
  /// Mirror of pack_bytes_from for the unpack direction.
  void unpack_bytes_from(const PackCursor& cur, const void* src, int count,
                         std::size_t nbytes, void* dst) const;

  /// Opaque identity of the underlying (shared) type tree; equal handles
  /// share it. Used as the pack-plan cache's fast-path key.
  const void* node_id() const { return node_.get(); }

  friend bool operator==(const Datatype& a, const Datatype& b) {
    return a.node_ == b.node_;
  }

 private:
  explicit Datatype(std::shared_ptr<detail::TypeNode> node)
      : node_(std::move(node)) {}
  const detail::TypeNode& node() const;
  std::shared_ptr<detail::TypeNode> node_;
};

}  // namespace mv2gnc::mpisim
