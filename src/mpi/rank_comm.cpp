#include "mpi/rank_comm.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>
#include <string>

#include "core/gpu_staging.hpp"
#include "core/protocol.hpp"
#include "mpi/coll.hpp"

namespace mv2gnc::mpisim::detail {

namespace {

std::uint64_t encode_envelope(int context, int tag) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(context))
          << 32) |
         static_cast<std::uint64_t>(static_cast<std::uint32_t>(tag));
}

int decode_tag(std::uint64_t word) {
  return static_cast<std::int32_t>(static_cast<std::uint32_t>(word));
}

int decode_context(std::uint64_t word) {
  return static_cast<std::int32_t>(static_cast<std::uint32_t>(word >> 32));
}

}  // namespace

RankComm::RankComm(int rank, int size, sim::Engine& engine,
                   cusim::CudaContext& cuda, core::TransportRouter& net,
                   gpu::MemoryRegistry& registry, const core::Tunables& tun,
                   sim::TraceRecorder* trace)
    : rank_(rank),
      size_(size),
      engine_(engine),
      registry_(registry),
      vbuf_pool_(tun.vbuf_count, tun.chunk_bytes),
      notifier_(engine),
      sched_(engine, vbuf_pool_, tun, net),
      crash_timer_(engine) {
  // vbufs model MVAPICH2's pre-registered (pinned) staging pool.
  registry.register_pinned_host(vbuf_pool_.arena(), vbuf_pool_.arena_bytes());
  res_.engine = &engine;
  res_.cuda = &cuda;
  res_.net = &net;
  res_.vbufs = &vbuf_pool_;
  res_.tun = &tun;
  res_.pack_stream = cuda.create_stream();
  res_.d2h_stream = cuda.create_stream();
  res_.h2d_stream = cuda.create_stream();
  res_.unpack_stream = cuda.create_stream();
  res_.pack_stream.set_wakeup(&notifier_);
  res_.d2h_stream.set_wakeup(&notifier_);
  res_.h2d_stream.set_wakeup(&notifier_);
  res_.unpack_stream.set_wakeup(&notifier_);
  net.set_wakeup(&notifier_);
  res_.notifier = &notifier_;
  res_.retries = &retry_stats_;
  res_.trace = trace;
  res_.rank = rank;
  res_.slot_graveyard = &slot_graveyard_;
  sched_.set_notifier(&notifier_);
  res_.sched = &sched_;
  res_.trig = &trig_stats_;
  auto wg = std::make_shared<CommGroup>();
  wg->context = 0;
  wg->world.resize(static_cast<std::size_t>(size));
  for (int i = 0; i < size; ++i) wg->world[static_cast<std::size_t>(i)] = i;
  wg->my_rank = rank;
  world_group_ = std::move(wg);
  coll_ = std::make_unique<CollEngine>(*this);
}

RankComm::~RankComm() {
  // By destruction time the engine has drained every event, so no RDMA
  // write can still reference a surrendered slot.
  for (auto& s : slot_graveyard_) core::detail::release_slot(vbuf_pool_, s);
  slot_graveyard_.clear();
  registry_.unregister_pinned_host(vbuf_pool_.arena());
}

// ---------------------------------------------------------------------------
// Posting
// ---------------------------------------------------------------------------

void RankComm::finish_request(ReqState& s) {
  s.complete = true;
  if (s.done_flag) {
    // Resolve any stream_wait_flag gated on this operation — on failure
    // too, so a stream-triggered iteration can never hang on a failed
    // transfer (wait()/test() still raise the RequestError).
    s.done_flag->trigger();
    s.done_flag.reset();
  }
}

Request RankComm::isend(const void* buf, int count, const Datatype& dtype,
                        int dst, int tag, int context, const XferOpts& opts) {
  if (dst < 0 || dst >= size_) {
    throw std::invalid_argument("isend: bad destination rank " +
                                std::to_string(dst));
  }
  auto state = std::make_shared<ReqState>();
  state->id = next_req_id();
  state->done_flag = opts.done_flag;
  post_isend(state, buf, count, dtype, dst, tag, context, opts);
  return Request(std::move(state));
}

void RankComm::post_isend(const std::shared_ptr<ReqState>& state,
                          const void* buf, int count, const Datatype& dtype,
                          int dst, int tag, int context,
                          const XferOpts& opts) {
  state->view = (opts.view != nullptr)
                    ? *opts.view
                    : core::MsgView::make(const_cast<void*>(buf), count,
                                          dtype, registry_);
  const core::MsgView& view = state->view;
  const core::Tunables& tun = *res_.tun;

  if (view.packed_bytes <= tun.eager_threshold) {
    if (opts.data_gate.valid()) {
      // Eager packs the user buffer synchronously; a pending data gate
      // means the producing kernels have not drained. Persistent stream
      // starts defer eager posts to stream-drain, so this only triggers
      // for a caller racing its own compute — wait the gate out.
      cusim::Event gate = opts.data_gate;
      gate.synchronize();
    }
    netsim::WireMessage m;
    m.kind = core::kEager;
    m.header[0] = encode_envelope(context, tag);
    m.header[1] = view.packed_bytes;
    m.payload.resize(view.packed_bytes);
    if (view.packed_bytes > 0) {
      if (view.on_device) {
        core::stage_to_host_any(*res_.cuda, view, m.payload.data(),
                                view.packed_bytes, tun.gpu_offload);
      } else if (view.contiguous) {
        std::memcpy(m.payload.data(), view.base, view.packed_bytes);
      } else {
        engine_.delay(tun.host_pack_time(
            view.packed_bytes, view.dtype.total_segments(view.count)));
        view.dtype.pack(view.base, view.count, m.payload.data());
      }
    }
    sched_.note_ctrl(core::kEager);
    sched_.flush_peer(dst);  // credits must not trail fresher traffic
    res_.net->post_send(dst, std::move(m));
    finish_request(*state);  // buffered send: the payload holds a copy
    return;
  }

  state->rndv_send =
      std::make_shared<core::RndvSend>(res_, view, dst, state->id,
                                       opts.cache);
  if (opts.data_gate.valid()) {
    state->rndv_send->set_data_gate(opts.data_gate);
  }
  active_sends_.emplace(state->id, state);
  state->rndv_send->start(encode_envelope(context, tag));
}

Request RankComm::irecv(void* buf, int count, const Datatype& dtype, int src,
                        int tag, int context, const XferOpts& opts) {
  if (src != kAnySource && (src < 0 || src >= size_)) {
    throw std::invalid_argument("irecv: bad source rank " +
                                std::to_string(src));
  }
  auto state = std::make_shared<ReqState>();
  state->id = next_req_id();
  state->is_recv = true;
  state->view = (opts.view != nullptr)
                    ? *opts.view
                    : core::MsgView::make(buf, count, dtype, registry_);
  state->src_filter = src;
  state->tag_filter = tag;
  state->context = context;
  state->done_flag = opts.done_flag;
  state->rndv_cache = opts.cache;

  // Unexpected-queue scan first (FIFO).
  for (auto it = unexpected_.begin(); it != unexpected_.end(); ++it) {
    if (it->context != context) continue;
    const bool src_ok = (src == kAnySource) || (src == it->src);
    const bool tag_ok = (tag == kAnyTag) ? (it->tag >= 0) : (tag == it->tag);
    if (!src_ok || !tag_ok) continue;
    UnexpectedMsg m = std::move(*it);
    unexpected_.erase(it);
    if (m.is_rts) {
      begin_rndv_recv(state, m.src, m.tag, m.bytes, m.sender_req,
                      m.sender_chunk, m.rget_src);
    } else {
      deliver_eager(*state, m.src, m.tag, m.payload);
    }
    return Request(std::move(state));
  }
  posted_recvs_.push_back(state);
  return Request(std::move(state));
}

// ---------------------------------------------------------------------------
// Stream-triggered posting (docs/STREAMS.md)
// ---------------------------------------------------------------------------

Request RankComm::isend_on(cusim::Stream& stream, const void* buf, int count,
                           const Datatype& dtype, int dst, int tag,
                           int context, XferOpts opts) {
  const core::Tunables& tun = *res_.tun;
  if (tun.trigger_mode != core::TriggerMode::kStream) {
    // CPU-driven baseline: drain the stream, then post exactly as a plain
    // isend would. Byte-identical to not using the stream API at all.
    stream.synchronize();
    return isend(buf, count, dtype, dst, tag, context, opts);
  }
  if (dst < 0 || dst >= size_) {
    throw std::invalid_argument("isend_on: bad destination rank " +
                                std::to_string(dst));
  }
  ++trig_stats_.stream_sends;
  // Stream completions must re-drive this rank's progress loop: the
  // host-trigger below fires in scheduler context and only wakes us.
  stream.set_wakeup(&notifier_);
  auto state = std::make_shared<ReqState>();
  state->id = next_req_id();
  if (!opts.done_flag) opts.done_flag = std::make_shared<cusim::HostFlag>();
  state->done_flag = opts.done_flag;
  if (opts.view != nullptr && opts.view->packed_bytes > tun.eager_threshold) {
    // A persistent re-fire handed us the frozen view and the message is
    // rendezvous-sized: post NOW. The RTS carries no payload, so the
    // handshake overlaps the stream's remaining compute; only the
    // data-touching stages gate on an event recorded at this point.
    opts.data_gate = res_.cuda->record_event(stream);
    post_isend(state, buf, count, dtype, dst, tag, context, opts);
  } else {
    // Defer the whole post until the stream drains past this point: the
    // RTS fires when the producing kernels complete (and an eager-sized
    // message packs only then — its synchronous pack reads the user
    // buffer). The posting itself runs in the progress loop, in process
    // context.
    auto op = std::make_shared<StreamOp>();
    op->post = [this, state, buf, count, dtype, dst, tag, context,
                view = opts.view, cache = opts.cache] {
      XferOpts o;
      o.view = view;
      o.cache = cache;
      post_isend(state, buf, count, dtype, dst, tag, context, o);
    };
    stream_ops_.push_back(op);
    res_.cuda->launch_host_trigger(stream, [op, n = &notifier_] {
      op->ready = true;
      n->notify();
    });
    ++trig_stats_.stream_ops;
  }
  // Completion gates later stream work (the next iteration's kernels wait
  // for the send to finish before overwriting the buffer).
  res_.cuda->stream_wait_flag(stream, state->done_flag);
  ++trig_stats_.stream_ops;
  return Request(std::move(state));
}

Request RankComm::irecv_on(cusim::Stream& stream, void* buf, int count,
                           const Datatype& dtype, int src, int tag,
                           int context, XferOpts opts) {
  const core::Tunables& tun = *res_.tun;
  if (tun.trigger_mode != core::TriggerMode::kStream) {
    return irecv(buf, count, dtype, src, tag, context, opts);
  }
  ++trig_stats_.stream_recvs;
  stream.set_wakeup(&notifier_);
  // The receive posts immediately — MPI matching must stay in program
  // order, and an early post lets the CTS leave as soon as the RTS lands.
  // Only the *consumers* of the data wait: stream work enqueued after this
  // call holds until the payload is unpacked into the user buffer.
  if (!opts.done_flag) opts.done_flag = std::make_shared<cusim::HostFlag>();
  auto flag = opts.done_flag;
  Request r = irecv(buf, count, dtype, src, tag, context, opts);
  res_.cuda->stream_wait_flag(stream, std::move(flag));
  ++trig_stats_.stream_ops;
  return r;
}

// ---------------------------------------------------------------------------
// Completion
// ---------------------------------------------------------------------------

void RankComm::wait(Request& req, Status* status) {
  if (!req.valid()) throw std::invalid_argument("wait: null request");
  ReqState& s = *req.state_;
  while (!s.complete) {
    progress_once();
    if (s.complete) break;
    notifier_.wait("MPI progress (rank " + std::to_string(rank_) + ")");
  }
  if (s.failed) throw RequestError(s.error);
  if (status != nullptr && s.is_recv) *status = s.status;
}

bool RankComm::test(Request& req, Status* status) {
  if (!req.valid()) throw std::invalid_argument("test: null request");
  progress_once();
  ReqState& s = *req.state_;
  if (!s.complete) return false;
  if (s.failed) throw RequestError(s.error);
  if (status != nullptr && s.is_recv) *status = s.status;
  return true;
}

void RankComm::cancel_request(Request& req) {
  if (!req.valid()) return;
  ReqState& s = *req.state_;
  if (s.complete) return;
  static const std::string kReason = "canceled: collective aborted";
  if (s.is_recv) {
    // A posted-but-unmatched receive is purely local: withdraw it.
    for (auto it = posted_recvs_.begin(); it != posted_recvs_.end(); ++it) {
      if (it->get() == &s) {
        posted_recvs_.erase(it);
        s.failed = true;
        s.error = kReason;
        finish_request(s);
        return;
      }
    }
    if (auto it = active_recvs_.find(s.id); it != active_recvs_.end()) {
      it->second->rndv_recv->cancel(kReason);
      sweep_transfers();
    }
    return;
  }
  // Eager sends complete at post time and were filtered above; only an
  // in-flight rendezvous send can still be open.
  if (auto it = active_sends_.find(s.id); it != active_sends_.end()) {
    it->second->rndv_send->cancel(kReason);
    sweep_transfers();
  }
}

void RankComm::drain_pending() {
  const auto obligations = [this] {
    return !active_sends_.empty() || !active_recvs_.empty() ||
           !draining_recvs_.empty() || sched_.pending_acks() > 0;
  };
  while (true) {
    progress_once();
    if (!obligations()) return;
    notifier_.wait("MPI finalize drain (rank " + std::to_string(rank_) +
                   ")");
  }
}

// ---------------------------------------------------------------------------
// Process faults / collective abort
// ---------------------------------------------------------------------------

void RankComm::set_crash_time(sim::SimTime t) {
  crash_at_ = t;
  // Wake-up only: the crash itself happens at the next progress entry, so
  // a rank blocked in notifier_.wait still dies on schedule.
  crash_timer_.arm(t, [this] { notifier_.notify(); });
}

std::uint64_t RankComm::coll_begin(int context) {
  CollAbortState& st = coll_abort_[context];
  const std::uint64_t seq = st.started++;
  if (st.aborted && st.abort_seq <= seq) {
    throw RequestError(
        "collective #" + std::to_string(seq) + " on context " +
        std::to_string(context) + " aborted: an earlier collective failed " +
        "(origin rank " + std::to_string(st.origin) +
        ") and poisoned the context");
  }
  return seq;
}

void RankComm::coll_wait(Request& req, Status* status, int context,
                         std::uint64_t seq, sim::SimTime deadline) {
  if (!req.valid()) throw std::invalid_argument("coll_wait: null request");
  ReqState& s = *req.state_;
  const auto abort_check = [&] {
    const auto it = coll_abort_.find(context);
    if (it != coll_abort_.end() && it->second.aborted &&
        it->second.abort_seq <= seq) {
      throw CollAbortObserved{it->second.abort_seq, it->second.origin};
    }
  };
  // Liveness watchdog: guarantees a future wake-up, so a surviving rank
  // whose peer died (and whose abort wave was lost) resolves bounded
  // instead of tripping the engine's deadlock detector. RAII: canceled on
  // every exit path, and a canceled timer is skipped without advancing the
  // virtual clock, so fault-free runs stay bit-exact.
  sim::DeadlineTimer watchdog(engine_);
  watchdog.arm(deadline, [this] { notifier_.notify(); });
  while (!s.complete) {
    abort_check();
    progress_once();
    if (s.complete) break;
    if (engine_.now() >= deadline) throw CollWatchdogExpired{};
    notifier_.wait("collective progress (rank " + std::to_string(rank_) +
                   ")");
  }
  abort_check();
  if (s.failed) throw RequestError(s.error);
  if (status != nullptr && s.is_recv) *status = s.status;
}

void RankComm::coll_note_abort(int context, std::uint64_t seq, int origin) {
  CollAbortState& st = coll_abort_[context];
  if (!st.aborted || seq < st.abort_seq) {
    st.aborted = true;
    st.abort_seq = seq;
    st.origin = origin;
  }
}

void RankComm::coll_send_abort_wave(const CommGroup& g, std::uint64_t seq,
                                    int origin) {
  coll_note_abort(g.context, seq, origin);
  CollAbortState& st = coll_abort_[g.context];
  if (st.wave_sent) return;  // one wave per context is enough: state is sticky
  st.wave_sent = true;
  for (int i = 0; i < g.size(); ++i) {
    const int w = g.world[static_cast<std::size_t>(i)];
    if (w == rank_) continue;
    netsim::WireMessage m;
    m.kind = core::kCollAbort;
    m.header[0] =
        static_cast<std::uint64_t>(static_cast<std::uint32_t>(g.context));
    m.header[1] = seq;
    m.header[2] =
        static_cast<std::uint64_t>(static_cast<std::uint32_t>(origin));
    sched_.note_ctrl(core::kCollAbort);
    sched_.flush_peer(w);
    res_.net->post_send(w, std::move(m));
  }
}

void RankComm::park_scratch(std::vector<std::shared_ptr<void>> scratch) {
  for (auto& p : scratch) scratch_graveyard_.push_back(std::move(p));
}

// ---------------------------------------------------------------------------
// Progress engine
// ---------------------------------------------------------------------------

void RankComm::progress_once() {
  // Injected crash-stop: takes effect at the first progress entry at or
  // after the armed time (the crash timer wakes a blocked rank so this
  // check is always reached).
  if (crash_at_ >= 0 && engine_.now() >= crash_at_) throw RankCrashed{};
  // Injected stall: a seeded pause modeling OS noise / a late CPU. Both
  // knobs default to zero, in which case no RNG is drawn and fault-free
  // runs stay bit-exact.
  const core::Tunables& tun = *res_.tun;
  if (tun.rank_stall_prob > 0.0 && tun.rank_stall_ns > 0 &&
      engine_.rand_uniform() < tun.rank_stall_prob) {
    engine_.delay(static_cast<sim::SimTime>(engine_.rand_below(
        static_cast<std::uint64_t>(tun.rank_stall_ns) + 1)));
  }
  // Fire stream-triggered operations whose producing stream work has
  // drained (the host-trigger only marks them ready; the actual post runs
  // here, in process context). Index loop: a post may enqueue more ops.
  if (!stream_ops_.empty()) {
    for (std::size_t i = 0; i < stream_ops_.size(); ++i) {
      auto& op = stream_ops_[i];
      if (op->ready && !op->posted) {
        op->posted = true;
        op->post();
        ++trig_stats_.triggers_fired;
      }
    }
    std::erase_if(stream_ops_,
                  [](const std::shared_ptr<StreamOp>& op) { return op->posted; });
  }
  netsim::Completion c;
  while (res_.net->poll(c)) dispatch(c);
  sweep_transfers();
  // Flush coalesced acks whose delivery window expired (the coalescing
  // deadline timer only wakes the notifier; the send happens here).
  sched_.poll();
}

void RankComm::dispatch(const netsim::Completion& c) {
  // Completions for transfers that already completed or failed (stale
  // duplicates, writes raced by the ack that finished the transfer) find
  // no owner; they are dropped, never fatal — on a lossy fabric "late and
  // redundant" is the common case, not a protocol violation.
  switch (c.type) {
    case netsim::CqType::kSendComplete:
      return;  // control/eager transmit drained; nothing to do
    case netsim::CqType::kRdmaComplete: {
      for (auto& [id, state] : active_sends_) {
        if (state->rndv_send->on_rdma_complete(c.wr_id)) return;
      }
      return;  // owner completed/failed and was retired
    }
    case netsim::CqType::kError: {
      // Transport-level write failure (CqType::kError): the owning sender
      // retransmits the chunk out of its staging slot.
      for (auto& [id, state] : active_sends_) {
        if (state->rndv_send->on_rdma_error(c.wr_id)) return;
      }
      return;
    }
    case netsim::CqType::kRdmaReadComplete: {
      for (auto& [id, state] : active_recvs_) {
        if (state->rndv_recv->on_rdma_read_complete(c.wr_id)) return;
      }
      return;
    }
    case netsim::CqType::kRecv:
      break;
  }
  const netsim::WireMessage& m = c.msg;
  switch (m.kind) {
    case core::kEager:
      handle_eager(m);
      return;
    case core::kRts:
      handle_rts(m);
      return;
    case core::kCts: {
      auto it = active_sends_.find(m.header[0]);
      if (it == active_sends_.end()) {
        ++retry_stats_.duplicates_dropped;
        return;
      }
      it->second->rndv_send->on_cts(m);
      return;
    }
    case core::kChunkAck: {
      auto it = active_sends_.find(m.header[0]);
      if (it == active_sends_.end()) {
        ++retry_stats_.duplicates_dropped;
        return;
      }
      it->second->rndv_send->on_chunk_ack(m);
      return;
    }
    case core::kChunkAckBatch: {
      // Coalesced CHUNK_ACKs, possibly spanning several of our senders.
      // Each entry applies independently; entries for retired transfers
      // are stale duplicates, dropped like any late individual ack.
      const std::size_t n = core::ack_entry_count(m.payload);
      for (std::size_t i = 0; i < n; ++i) {
        const core::AckBatchEntry e = core::read_ack_entry(m.payload, i);
        auto it = active_sends_.find(e.sender_req);
        if (it == active_sends_.end()) {
          ++retry_stats_.duplicates_dropped;
          continue;
        }
        it->second->rndv_send->apply_chunk_ack(e);
      }
      return;
    }
    case core::kChunkFin: {
      if (auto it = active_recvs_.find(m.header[0]);
          it != active_recvs_.end()) {
        it->second->rndv_recv->on_chunk_fin(m);
      } else if (auto dit = draining_recvs_.find(m.header[0]);
                 dit != draining_recvs_.end()) {
        dit->second->on_chunk_fin(m);  // replays the stored ack
      } else {
        ++retry_stats_.duplicates_dropped;
      }
      return;
    }
    case core::kSendDone: {
      if (auto it = active_recvs_.find(m.header[0]);
          it != active_recvs_.end()) {
        it->second->rndv_recv->on_send_done();
      } else if (auto dit = draining_recvs_.find(m.header[0]);
                 dit != draining_recvs_.end()) {
        dit->second->on_send_done();
      } else if (auto fit = finished_recvs_.find(m.header[0]);
                 fit != finished_recvs_.end()) {
        // Collected direct-mode receiver: the sender is retransmitting its
        // SEND_DONE because our SEND_DONE_ACK was lost. Re-ack from the
        // retained record so the sender's handshake terminates.
        netsim::WireMessage ack;
        ack.kind = core::kSendDoneAck;
        ack.header[0] = fit->second.second;
        sched_.note_ctrl(core::kSendDoneAck);
        res_.net->post_send(fit->second.first, std::move(ack));
      } else {
        ++retry_stats_.duplicates_dropped;
      }
      return;
    }
    case core::kRndvDone: {
      auto it = active_sends_.find(m.header[0]);
      if (it == active_sends_.end()) {
        ++retry_stats_.duplicates_dropped;
        return;
      }
      it->second->rndv_send->on_rget_done(m);
      return;
    }
    case core::kRtsAck: {
      auto it = active_sends_.find(m.header[0]);
      if (it == active_sends_.end()) {
        ++retry_stats_.duplicates_dropped;
        return;
      }
      it->second->rndv_send->on_rts_ack();
      return;
    }
    case core::kSendDoneAck: {
      auto it = active_sends_.find(m.header[0]);
      if (it == active_sends_.end()) {
        ++retry_stats_.duplicates_dropped;
        return;
      }
      it->second->rndv_send->on_send_done_ack();
      return;
    }
    case core::kSendAbort: {
      if (auto it = active_recvs_.find(m.header[0]);
          it != active_recvs_.end()) {
        it->second->rndv_recv->on_send_abort();
      } else if (auto dit = draining_recvs_.find(m.header[0]);
                 dit != draining_recvs_.end()) {
        dit->second->on_send_abort();
      } else if (m.header[1] != 0) {
        // Retraction from a canceled sender (RndvSend::cancel): no
        // receiver was ever assigned, but its RTS may be parked in the
        // unexpected queue. Purge it — otherwise every duplicate RTS
        // would be re-acked (keeping a dead handshake "alive"), and a
        // future receive on a reused tag could match a rendezvous whose
        // sender is gone.
        bool purged = false;
        for (auto uit = unexpected_.begin(); uit != unexpected_.end();
             ++uit) {
          if (uit->is_rts && uit->src == m.src_node &&
              uit->sender_req == m.header[1]) {
            unexpected_.erase(uit);
            purged = true;
            break;
          }
        }
        if (!purged) ++retry_stats_.duplicates_dropped;
      } else {
        ++retry_stats_.duplicates_dropped;
      }
      return;
    }
    case core::kCollAbort: {
      // COLL_ABORT wave: needs no matching — the abort state is sticky per
      // context and checked by every collective wait. Receipt is
      // idempotent (coll_note_abort keeps the earliest sequence).
      coll_note_abort(static_cast<int>(static_cast<std::int32_t>(
                          static_cast<std::uint32_t>(m.header[0]))),
                      m.header[1],
                      static_cast<int>(static_cast<std::int32_t>(
                          static_cast<std::uint32_t>(m.header[2]))));
      return;
    }
    default:
      throw std::logic_error("unknown wire message kind " +
                             std::to_string(m.kind));
  }
}

std::shared_ptr<ReqState> RankComm::match_posted(int src, int tag,
                                                 int context) {
  for (auto it = posted_recvs_.begin(); it != posted_recvs_.end(); ++it) {
    ReqState& r = **it;
    if (r.context != context) continue;
    const bool src_ok =
        (r.src_filter == kAnySource) || (r.src_filter == src);
    const bool tag_ok =
        (r.tag_filter == kAnyTag) ? (tag >= 0) : (r.tag_filter == tag);
    if (src_ok && tag_ok) {
      auto state = *it;
      posted_recvs_.erase(it);
      return state;
    }
  }
  return nullptr;
}

void RankComm::handle_eager(const netsim::WireMessage& m) {
  const int tag = decode_tag(m.header[0]);
  const int context = decode_context(m.header[0]);
  if (auto r = match_posted(m.src_node, tag, context)) {
    deliver_eager(*r, m.src_node, tag, m.payload);
    return;
  }
  UnexpectedMsg u;
  u.is_rts = false;
  u.src = m.src_node;
  u.tag = tag;
  u.context = context;
  u.bytes = m.header[1];
  u.payload = m.payload;
  unexpected_.push_back(std::move(u));
}

void RankComm::handle_rts(const netsim::WireMessage& m) {
  // Idempotent receipt: a retransmitted RTS for a transfer we already
  // track must not spawn a second receiver. The index answers with the
  // stored CTS (or RGET done), recovering a lost handshake leg.
  const auto key = std::make_pair(m.src_node, m.header[2]);
  if (auto it = rts_index_.find(key); it != rts_index_.end()) {
    it->second->on_duplicate_rts();
    return;
  }
  if (finished_rts_.find(key) != finished_rts_.end()) {
    // Very late duplicate of a transfer already garbage-collected. The
    // sender is long done (it only stops resending the RTS once answered),
    // so no reply is owed — just never spawn a second receiver.
    ++retry_stats_.duplicates_dropped;
    return;
  }
  for (const UnexpectedMsg& u : unexpected_) {
    if (u.is_rts && u.src == m.src_node && u.sender_req == m.header[2]) {
      ++retry_stats_.duplicates_dropped;  // original still queued unmatched
      return;
    }
  }
  const int tag = decode_tag(m.header[0]);
  const int context = decode_context(m.header[0]);
  const std::byte* rget_src =
      (m.header[4] != 0)
          ? reinterpret_cast<const std::byte*>(
                static_cast<std::uintptr_t>(m.header[5]))
          : nullptr;
  if (auto r = match_posted(m.src_node, tag, context)) {
    begin_rndv_recv(r, m.src_node, tag, m.header[1], m.header[2],
                    m.header[3], rget_src);
    return;
  }
  UnexpectedMsg u;
  u.is_rts = true;
  u.src = m.src_node;
  u.tag = tag;
  u.context = context;
  u.bytes = m.header[1];
  u.sender_req = m.header[2];
  u.sender_chunk = m.header[3];
  u.rget_src = rget_src;
  unexpected_.push_back(std::move(u));
  // No matching receive yet — legal MPI may post it arbitrarily late. The
  // sender's retry budget is refreshed by the NIC-level delivery receipt
  // (kRtsAck, see Fabric::DeliveryReceipt), which fired the moment this
  // RTS landed in our CQ — even if this process had been busy computing
  // instead of polling. Nothing more to do here.
}

void RankComm::deliver_eager(ReqState& r, int src, int tag,
                             const std::vector<std::byte>& payload) {
  const core::MsgView& view = r.view;
  if (payload.size() > view.packed_bytes) {
    throw TruncationError("eager message of " +
                          std::to_string(payload.size()) +
                          " bytes truncates receive buffer of " +
                          std::to_string(view.packed_bytes));
  }
  const core::Tunables& tun = *res_.tun;
  if (!payload.empty()) {
    if (view.on_device) {
      core::stage_from_host_any(*res_.cuda, view, payload.data(),
                                payload.size(), tun.gpu_offload);
    } else if (view.contiguous) {
      std::memcpy(view.base, payload.data(), payload.size());
    } else {
      engine_.delay(tun.host_pack_time(
          payload.size(), view.dtype.total_segments(view.count)));
      view.dtype.unpack_bytes(payload.data(), view.count, 0, payload.size(),
                              view.base);
    }
  }
  r.status = Status{src, tag, payload.size()};
  finish_request(r);
}

void RankComm::begin_rndv_recv(const std::shared_ptr<ReqState>& r, int src,
                               int tag, std::size_t bytes,
                               std::uint64_t sender_req,
                               std::size_t sender_chunk,
                               const std::byte* rget_src) {
  if (bytes > r->view.packed_bytes) {
    throw TruncationError("rendezvous message of " + std::to_string(bytes) +
                          " bytes truncates receive buffer of " +
                          std::to_string(r->view.packed_bytes));
  }
  r->status = Status{src, tag, bytes};
  r->rndv_recv = std::make_shared<core::RndvRecv>(
      res_, r->view, src, sender_req, r->id, bytes, sender_chunk, rget_src,
      r->rndv_cache);
  active_recvs_.emplace(r->id, r);
  rts_index_.emplace(std::make_pair(src, sender_req), r->rndv_recv);
  r->rndv_recv->start();
}

void RankComm::sweep_transfers() {
  // advance() may complete transfers; collect then erase to keep iterators
  // valid.
  std::vector<std::uint64_t> done_sends;
  for (auto& [id, state] : active_sends_) {
    state->rndv_send->advance();
    if (state->rndv_send->failed()) {
      state->failed = true;
      state->error = state->rndv_send->error();
      finish_request(*state);
      done_sends.push_back(id);
    } else if (state->rndv_send->done() && state->rndv_send->drained()) {
      // done() alone is not enough: a direct-mode sender still owes the
      // (acked) SEND_DONE, and retiring it would stop the retransmission
      // its peer's request completion hinges on.
      finish_request(*state);
      done_sends.push_back(id);
    }
  }
  for (auto id : done_sends) {
    auto it = active_sends_.find(id);
    it->second->rndv_send.reset();
    active_sends_.erase(it);
  }
  std::vector<std::uint64_t> done_recvs;
  for (auto& [id, state] : active_recvs_) {
    state->rndv_recv->advance();
    if (state->rndv_recv->failed()) {
      state->failed = true;
      state->error = state->rndv_recv->error();
      finish_request(*state);
      done_recvs.push_back(id);
    } else if (state->rndv_recv->request_complete()) {
      finish_request(*state);
      done_recvs.push_back(id);
    }
  }
  for (auto id : done_recvs) {
    auto it = active_recvs_.find(id);
    auto recv = it->second->rndv_recv;
    it->second->rndv_recv.reset();
    active_recvs_.erase(it);
    // A resolved receiver may still owe protocol duties: retained landing
    // slots wait for SEND_DONE, an RGET done must stay replayable. Park it
    // in the draining map so control messages keep finding it; once nothing
    // remains, shrink it to its finished_* record.
    if (!recv->drained()) draining_recvs_.emplace(id, std::move(recv));
    else retire_recv(id, *recv);
  }
  std::vector<std::uint64_t> drained;
  for (auto& [id, recv] : draining_recvs_) {
    recv->advance();  // drives the liveness watchdog toward force_drain
    if (recv->drained()) drained.push_back(id);
  }
  for (auto id : drained) {
    auto it = draining_recvs_.find(id);
    retire_recv(id, *it->second);
    draining_recvs_.erase(it);
  }
}

void RankComm::retire_recv(std::uint64_t recv_req,
                           const core::RndvRecv& recv) {
  const auto key = std::make_pair(recv.src_node(), recv.sender_req());
  rts_index_.erase(key);
  finished_rts_.emplace(key, recv_req);
  finished_recvs_.emplace(recv_req, key);
}

// ---------------------------------------------------------------------------
// Probe
// ---------------------------------------------------------------------------

bool RankComm::iprobe(int src, int tag, Status* status, int context) {
  progress_once();
  for (const UnexpectedMsg& m : unexpected_) {
    if (m.context != context) continue;
    const bool src_ok = (src == kAnySource) || (src == m.src);
    const bool tag_ok = (tag == kAnyTag) ? (m.tag >= 0) : (tag == m.tag);
    if (src_ok && tag_ok) {
      if (status != nullptr) *status = Status{m.src, m.tag, m.bytes};
      return true;
    }
  }
  return false;
}

void RankComm::probe(int src, int tag, Status* status, int context) {
  while (!iprobe(src, tag, status, context)) {
    notifier_.wait("MPI_Probe (rank " + std::to_string(rank_) + ")");
  }
}

// ---------------------------------------------------------------------------
// Explicit pack/unpack (GPU-aware)
// ---------------------------------------------------------------------------

void RankComm::pack(const void* inbuf, int count, const Datatype& dtype,
                    void* outbuf, std::size_t outsize,
                    std::size_t& position) {
  auto view =
      core::MsgView::make(const_cast<void*>(inbuf), count, dtype, registry_);
  if (position > outsize || view.packed_bytes > outsize - position) {
    throw std::invalid_argument("pack: output buffer too small");
  }
  auto* out = static_cast<std::byte*>(outbuf) + position;
  if (view.packed_bytes > 0) {
    if (view.on_device) {
      core::stage_to_host_any(*res_.cuda, view, out, view.packed_bytes,
                              res_.tun->gpu_offload);
    } else {
      engine_.delay(res_.tun->host_pack_time(
          view.packed_bytes, view.dtype.total_segments(count)));
      dtype.pack(inbuf, count, out);
    }
  }
  position += view.packed_bytes;
}

void RankComm::unpack(const void* inbuf, std::size_t insize,
                      std::size_t& position, void* outbuf, int count,
                      const Datatype& dtype) {
  auto view = core::MsgView::make(outbuf, count, dtype, registry_);
  if (position > insize || view.packed_bytes > insize - position) {
    throw std::invalid_argument("unpack: input buffer exhausted");
  }
  const auto* in = static_cast<const std::byte*>(inbuf) + position;
  if (view.packed_bytes > 0) {
    if (view.on_device) {
      core::stage_from_host_any(*res_.cuda, view, in, view.packed_bytes,
                                res_.tun->gpu_offload);
    } else {
      engine_.delay(res_.tun->host_pack_time(
          view.packed_bytes, view.dtype.total_segments(count)));
      dtype.unpack(in, count, outbuf);
    }
  }
  position += view.packed_bytes;
}

// ---------------------------------------------------------------------------
// Collectives (forwarders into the engine)
// ---------------------------------------------------------------------------

void RankComm::barrier(const CommGroup& g) { coll_->barrier(g); }

void RankComm::bcast(void* buf, int count, const Datatype& dtype, int root,
                     const CommGroup& g) {
  coll_->bcast(buf, count, dtype, root, g);
}

void RankComm::allreduce_doubles(const double* sendbuf, double* recvbuf,
                                 int count, bool take_max,
                                 const CommGroup& g) {
  coll_->allreduce_doubles(sendbuf, recvbuf, count, take_max, g);
}

void RankComm::allgather(const void* sendbuf, int count,
                         const Datatype& dtype, void* recvbuf,
                         const CommGroup& g) {
  coll_->allgather(sendbuf, count, dtype, recvbuf, g);
}

void RankComm::gather(const void* sendbuf, int count, const Datatype& dtype,
                      void* recvbuf, int root, const CommGroup& g) {
  coll_->gather(sendbuf, count, dtype, recvbuf, root, g);
}

void RankComm::scatter(const void* sendbuf, void* recvbuf, int count,
                       const Datatype& dtype, int root, const CommGroup& g) {
  coll_->scatter(sendbuf, recvbuf, count, dtype, root, g);
}

void RankComm::alltoall(const void* sendbuf, void* recvbuf, int count,
                        const Datatype& dtype, const CommGroup& g) {
  coll_->alltoall(sendbuf, recvbuf, count, dtype, g);
}

}  // namespace mv2gnc::mpisim::detail
