// Collectives engine: flat (single-level) and MVAPICH2-style two-level
// hierarchical algorithms over the transport seam.
//
// Flat algorithms treat the communicator as one ring/tree/butterfly:
// dissemination barrier, binomial bcast, recursive-doubling allreduce,
// ring allgather and pairwise-exchange alltoall. When the cluster topology
// co-locates ranks (ranks_per_node > 1, blocked placement), the two-level
// variants split every collective into intra-node phases — which the
// TransportRouter carries over the node's IPC channel — and an inter-node
// phase that is the only traffic crossing the fabric. On rectangular
// topologies the inter-node phase is striped: allreduce reduce-scatters in
// the node, butterflies each slice among counterpart members (all n HCAs
// in parallel, 1/n of the bytes each) and reassembles with an intra
// allgather; allgather runs n parallel member rings, each carrying its
// stripe of every node's superblock. Ragged groups fall back to
// leader-based variants. Selection is per call via the coll_select
// tunable; kAuto consults the topology and the cost hints the Cluster
// derives from its fabric and IPC models. See docs/COLLECTIVES.md.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "cuda/runtime.hpp"
#include "mpi/rank_comm.hpp"
#include "sim/time.hpp"

namespace mv2gnc::mpisim::detail {

/// Counters of one collective operation, summed over every call this rank
/// took part in (surfaced by Cluster::print_stats).
struct CollOpStats {
  std::uint64_t calls = 0;          // invocations on this rank
  std::uint64_t hier_calls = 0;     // of which took the two-level path
  std::uint64_t bytes_sent = 0;     // payload bytes this rank isend()ed
  std::uint64_t intra_phases = 0;   // node-local phases this rank executed
  std::uint64_t leader_phases = 0;  // cluster-wide / leader phases executed

  // -- device-buffer path (coll_device, docs/COLLECTIVES.md) -------------
  std::uint64_t device_calls = 0;      // calls with device-resident buffers
  std::uint64_t device_pipelined = 0;  // of which took the sliced pipeline
  std::uint64_t device_slices = 0;     // pipeline slices this rank processed
  std::uint64_t bytes_staged = 0;      // device bytes staged across PCIe
  std::uint64_t bytes_peer = 0;        // device bytes over device-direct IPC
  std::uint64_t reduce_kernels = 0;    // device fold launches
  sim::SimTime device_stage_ns = 0;    // summed per-stage durations
  sim::SimTime device_elapsed_ns = 0;  // virtual time inside device calls

  /// 1 - elapsed/stages: the fraction of serialized stage time the sliced
  /// schedule hid behind other stages (0 for the synchronous staged path).
  double overlap_ratio() const {
    if (device_stage_ns <= 0 || device_elapsed_ns <= 0) return 0.0;
    const double r = 1.0 - static_cast<double>(device_elapsed_ns) /
                               static_cast<double>(device_stage_ns);
    return r > 0.0 ? r : 0.0;
  }
};

struct CollStats {
  CollOpStats barrier, bcast, allreduce, allgather, alltoall, gather, scatter;

  std::uint64_t total_calls() const {
    return barrier.calls + bcast.calls + allreduce.calls + allgather.calls +
           alltoall.calls + gather.calls + scatter.calls;
  }
};

/// Cost facts CollSelect::kAuto consults, derived by the Cluster from its
/// fabric and IPC cost models (mirroring how scheme_select = model reads
/// the GPU cost model). Defaults match the stock QDR-IB + C2050 testbed so
/// a bare RankComm still selects sensibly in unit tests.
struct CollCostHints {
  double fabric_bw = 3.2;                // GB/s across the HCA
  sim::SimTime fabric_latency_ns = 1500;
  double ipc_shm_bw = 4.8;               // in-node copy rate below threshold
  double ipc_cma_bw = 11.0;              // in-node CMA large-copy rate
  std::size_t ipc_cma_threshold = 64 * 1024;
  sim::SimTime ipc_latency_ns = 300;

  /// Host-copy rate of one in-node transfer, mirroring
  /// netsim::IpcChannel::copy_bw's shm-vs-CMA size split.
  double ipc_host_bw(std::size_t bytes) const {
    return bytes >= ipc_cma_threshold ? ipc_cma_bw : ipc_shm_bw;
  }

  // -- device-buffer extension (coll_device; defaults = Tesla C2050) -----
  double d2h_bw = 5.5;          // GB/s device-to-host across PCIe
  double h2d_bw = 5.7;          // GB/s host-to-device across PCIe
  double reduce_bw = 26.0;      // GB/s of the elementwise fold kernel
  double ipc_peer_bw = 6.0;     // GB/s of a device-direct IPC peer copy
  sim::SimTime copy_launch_ns = 4000;
  sim::SimTime kernel_launch_ns = 7000;

  /// The PCIe rate a staged leg is bound by (slices cross both ways).
  double pcie_bw() const { return d2h_bw < h2d_bw ? d2h_bw : h2d_bw; }
  /// Mirror of gpu::GpuCostModel::reduce_time for the selection sketches.
  sim::SimTime reduce_time(std::size_t bytes) const {
    return kernel_launch_ns +
           static_cast<sim::SimTime>(static_cast<double>(bytes) / reduce_bw);
  }
};

/// One rank's collective-algorithm engine; owned by its RankComm. All
/// communication goes through the owner's isend/irecv/wait, so eager vs
/// rendezvous protocol choice, reliability and transport routing apply to
/// collective traffic exactly as to point-to-point traffic.
///
/// Hang-free guarantee (docs/RELIABILITY.md, "Collective abort"): every
/// blocking wait inside a collective runs through coll_wait with a
/// liveness watchdog, and any failure — a p2p transfer exhausting its
/// retry budget, an incoming COLL_ABORT wave, or watchdog expiry — aborts
/// the whole operation: the rank broadcasts the wave to the group, parks
/// its scratch buffers (stale messages of the abandoned operation may
/// still deliver into them), poisons the communicator context (per-step
/// tags are reused across calls, so no later collective on it is safe)
/// and surfaces a clean RequestError. No surviving rank blocks forever.
class CollEngine {
 public:
  explicit CollEngine(RankComm& comm) : comm_(comm) {}
  CollEngine(const CollEngine&) = delete;
  CollEngine& operator=(const CollEngine&) = delete;

  void set_cost_hints(const CollCostHints& h) { hints_ = h; }
  const CollCostHints& cost_hints() const { return hints_; }
  const CollStats& stats() const { return stats_; }

  void barrier(const CommGroup& g);
  void bcast(void* buf, int count, const Datatype& dtype, int root,
             const CommGroup& g);
  void allreduce_doubles(const double* sendbuf, double* recvbuf, int count,
                         bool take_max, const CommGroup& g);
  void allgather(const void* sendbuf, int count, const Datatype& dtype,
                 void* recvbuf, const CommGroup& g);
  void alltoall(const void* sendbuf, void* recvbuf, int count,
                const Datatype& dtype, const CommGroup& g);
  void gather(const void* sendbuf, int count, const Datatype& dtype,
              void* recvbuf, int root, const CommGroup& g);
  void scatter(const void* sendbuf, void* recvbuf, int count,
               const Datatype& dtype, int root, const CommGroup& g);

 private:
  /// Node map of one communicator: nodes appear in order of first
  /// appearance by comm rank, members in ascending comm rank, the leader
  /// is the lowest comm rank on the node. Every member computes the same
  /// map, so phase schedules agree without negotiation.
  struct Topology {
    std::vector<int> node_of;               // comm rank -> dense node index
    std::vector<std::vector<int>> members;  // node index -> comm ranks
    std::vector<int> leaders;               // node index -> leading comm rank
    int my_node = 0;
    bool multi_rank_node = false;  // some node hosts >= 2 comm ranks

    int num_nodes() const { return static_cast<int>(members.size()); }
  };
  Topology map_nodes(const CommGroup& g) const;
  /// Rank-invariant flat-vs-two-level selection sketch. With `device` the
  /// sketch gains the PCIe staging and device-fold terms of the
  /// device-buffer path (intra legs priced at the peer-copy rate).
  bool use_hier(const Topology& t, std::size_t bytes,
                bool device = false) const;

  // Un-guarded algorithm bodies (one per public op).
  void barrier_impl(const CommGroup& g);
  void bcast_impl(void* buf, int count, const Datatype& dtype, int root,
                  const CommGroup& g);
  void allreduce_impl(const double* sendbuf, double* recvbuf, int count,
                      bool take_max, const CommGroup& g);
  void allgather_impl(const void* sendbuf, int count, const Datatype& dtype,
                      void* recvbuf, const CommGroup& g);
  void alltoall_impl(const void* sendbuf, void* recvbuf, int count,
                     const Datatype& dtype, const CommGroup& g);
  void gather_impl(const void* sendbuf, int count, const Datatype& dtype,
                   void* recvbuf, int root, const CommGroup& g);
  void scatter_impl(const void* sendbuf, void* recvbuf, int count,
                    const Datatype& dtype, int root, const CommGroup& g);

  // Wire bodies: the flat/two-level exchange of one collective operating on
  // buffers in place, shared by the host path (unchanged schedule) and the
  // device-buffer staged/pipelined paths.
  void allreduce_wire(CollOpStats& op, double* data, int count, bool take_max,
                      const CommGroup& g);
  void bcast_wire(CollOpStats& op, void* buf, int count, const Datatype& dtype,
                  int root, const CommGroup& g);
  void allgather_wire(CollOpStats& op, const void* sendbuf, int count,
                      const Datatype& dtype, void* recvbuf, const CommGroup& g);

  // -- device-buffer collectives (src/mpi/coll_device.cpp) ----------------
  /// True when `p` lies inside a registered device allocation.
  bool device_buffer(const void* p) const;
  /// Pure selection sketch behind coll_device = auto: does the sliced
  /// pipeline beat one synchronous full-size stage for `bytes` over `p`
  /// ranks? Rank-invariant (bytes, hints and tunables only).
  bool device_pipeline_wins(std::size_t bytes, int p) const;
  /// Slice size of the pipeline: the coll_slice_bytes knob, or the model
  /// pick minimizing (slices + 2) * max-stage-time; capped so the per-slice
  /// tag offsets stay inside one tag span.
  std::size_t pick_slice_bytes(std::size_t total, int p) const;
  /// Lazily create the collective-owned d2h / h2d / reduce streams.
  void ensure_coll_streams();
  /// Stream-ordered elementwise fold acc = acc (op) in over n doubles,
  /// charged as a device reduction kernel; blocks until the fold landed.
  void device_fold(CollOpStats& op, double* acc, const double* in, int n,
                   bool take_max);
  /// Abort-safe staging slot: pool-backed when it fits (pinned one-off
  /// otherwise), parked with the scratch list on abort.
  core::detail::StagingSlot* slot_scratch(std::size_t bytes);
  /// Abort-safe device scratch allocation of n doubles.
  double* device_scratch(std::size_t n);

  void device_allreduce(CollOpStats& op, const double* sendbuf,
                        double* recvbuf, int count, bool take_max,
                        const CommGroup& g);
  /// Sliced D2H / wire / fold / H2D pipeline over `ranks` for the device
  /// range [dev, dev+count); the heart of the pipelined allreduce (flat
  /// call: all ranks, full vector; two-level call: stripe group, own
  /// stripe).
  void device_sliced_allreduce(CollOpStats& op, const CommGroup& g,
                               const std::vector<int>& ranks, int me,
                               double* dev, int count, bool take_max);
  /// Wire leg of one host-resident slice, with per-slice tags,
  /// device-kernel folds and an optional D2H data gate on the first send
  /// (trigger_mode = stream). Recursive-halving reduce-scatter plus
  /// recursive-doubling allgather (the large-message shape: 2(1-1/p)
  /// wire bytes and (1-1/p) folded bytes per slice instead of recursive
  /// doubling's log2(p) of each); tiny slices fall back to the
  /// full-vector butterfly.
  void device_slice_wire(CollOpStats& op, const CommGroup& g,
                         const std::vector<int>& ranks, int me, double* data,
                         int count, bool take_max, int slice,
                         cusim::Event* gate);
  void device_bcast(CollOpStats& op, void* buf, int count,
                    const Datatype& dtype, int root, const CommGroup& g);
  void device_allgather(CollOpStats& op, const void* sendbuf, int count,
                        const Datatype& dtype, void* recvbuf,
                        const CommGroup& g);

  /// Run one collective body under the abort protocol: registers the call
  /// with coll_begin (throws if the context is poisoned), converts any
  /// failure inside into an abort wave + clean RequestError, and releases
  /// (or parks) the scratch buffers.
  template <typename Fn>
  void run_guarded(const CommGroup& g, Fn&& body);
  /// Watchdogged wait used by every algorithm step (see coll_wait).
  void cwait(Request& r);
  /// Worst-case p2p retry budget (sender plus receiver watchdog backoff
  /// series) times coll_watchdog_factor: the deadline of one cwait.
  sim::SimTime watchdog_budget() const;
  void abort_collective(const CommGroup& g, std::uint64_t seq, int origin);

  /// Allocate collective scratch that survives an abort: kept in scratch_
  /// while the op runs, freed on normal completion, parked in the owning
  /// RankComm on abort (stale messages may still deliver into it). Stack
  /// temporaries must never back a posted receive in a collective.
  template <typename T>
  T* scratch(std::size_t n) {
    auto v = std::make_shared<std::vector<T>>(n);
    T* p = v->data();
    scratch_.push_back(std::move(v));
    return p;
  }

  // Primitives shared between the flat path and the leader/intra legs.
  // They run over an ordered subgroup of comm ranks; `me` is this rank's
  // index within `ranks`.
  void dissemination(CollOpStats& op, const CommGroup& g,
                     const std::vector<int>& ranks, int me, int tag_base);
  void binomial_bcast(CollOpStats& op, const CommGroup& g,
                      const std::vector<int>& ranks, int me, int root_idx,
                      void* buf, int count, const Datatype& dtype, int tag);
  void rd_allreduce(CollOpStats& op, const CommGroup& g,
                    const std::vector<int>& ranks, int me, double* recvbuf,
                    int count, bool take_max);

  Request isend_counted(CollOpStats& op, const void* buf, int count,
                        const Datatype& dtype, int dst_world, int tag,
                        int context);
  /// irecv that registers the request in inflight_ (as isend_counted does
  /// for sends) so abort_collective can cancel it. Every receive a
  /// collective body posts must go through this wrapper.
  Request irecv_track(void* buf, int count, const Datatype& dtype, int src,
                      int tag, int context);

  RankComm& comm_;
  CollCostHints hints_;
  CollStats stats_;

  // Abort-protocol state of the collective currently on this rank's stack
  // (collectives never nest, so one slot suffices).
  int cur_context_ = 0;
  std::uint64_t cur_seq_ = 0;
  sim::SimTime wait_budget_ = 0;
  std::vector<std::shared_ptr<void>> scratch_;
  /// Staging slots of the in-flight device collective (slot_scratch).
  /// Released back to the pool on normal completion; an abort parks them
  /// in the owning RankComm's slot graveyard instead — a still-queued
  /// stream copy may reference them, and the survivor audit invariant
  /// (vbufs_in_use == graveyard_slots) must keep counting them.
  std::vector<std::unique_ptr<core::detail::StagingSlot>> coll_slots_;
  void settle_coll_slots(bool aborted);
  // Every request the running collective posted (shared handles; cheap).
  // Cleared on normal completion; on abort each one is canceled — an
  // abandoned isend whose matching receive will never be posted (the peer
  // aborted too) would otherwise retransmit its RTS forever, because the
  // peer's unmatched-RTS ack keeps resetting the sender's retry budget,
  // and finalize's drain_pending would never return.
  std::vector<Request> inflight_;

  // Collective-owned streams of the device-buffer path (lazily created on
  // the first device-resident call; distinct from the rendezvous staging
  // streams so collective slices never queue behind p2p traffic).
  bool coll_streams_ready_ = false;
  cusim::Stream coll_d2h_;
  cusim::Stream coll_h2d_;
  cusim::Stream coll_red_;
};

}  // namespace mv2gnc::mpisim::detail
