// Collectives engine: flat (single-level) and MVAPICH2-style two-level
// hierarchical algorithms over the transport seam.
//
// Flat algorithms treat the communicator as one ring/tree/butterfly:
// dissemination barrier, binomial bcast, recursive-doubling allreduce,
// ring allgather and pairwise-exchange alltoall. When the cluster topology
// co-locates ranks (ranks_per_node > 1, blocked placement), the two-level
// variants split every collective into intra-node phases — which the
// TransportRouter carries over the node's IPC channel — and an inter-node
// phase that is the only traffic crossing the fabric. On rectangular
// topologies the inter-node phase is striped: allreduce reduce-scatters in
// the node, butterflies each slice among counterpart members (all n HCAs
// in parallel, 1/n of the bytes each) and reassembles with an intra
// allgather; allgather runs n parallel member rings, each carrying its
// stripe of every node's superblock. Ragged groups fall back to
// leader-based variants. Selection is per call via the coll_select
// tunable; kAuto consults the topology and the cost hints the Cluster
// derives from its fabric and IPC models. See docs/COLLECTIVES.md.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "mpi/rank_comm.hpp"
#include "sim/time.hpp"

namespace mv2gnc::mpisim::detail {

/// Counters of one collective operation, summed over every call this rank
/// took part in (surfaced by Cluster::print_stats).
struct CollOpStats {
  std::uint64_t calls = 0;          // invocations on this rank
  std::uint64_t hier_calls = 0;     // of which took the two-level path
  std::uint64_t bytes_sent = 0;     // payload bytes this rank isend()ed
  std::uint64_t intra_phases = 0;   // node-local phases this rank executed
  std::uint64_t leader_phases = 0;  // cluster-wide / leader phases executed
};

struct CollStats {
  CollOpStats barrier, bcast, allreduce, allgather, alltoall, gather, scatter;

  std::uint64_t total_calls() const {
    return barrier.calls + bcast.calls + allreduce.calls + allgather.calls +
           alltoall.calls + gather.calls + scatter.calls;
  }
};

/// Cost facts CollSelect::kAuto consults, derived by the Cluster from its
/// fabric and IPC cost models (mirroring how scheme_select = model reads
/// the GPU cost model). Defaults match the stock QDR-IB + C2050 testbed so
/// a bare RankComm still selects sensibly in unit tests.
struct CollCostHints {
  double fabric_bw = 3.2;                // GB/s across the HCA
  sim::SimTime fabric_latency_ns = 1500;
  double ipc_shm_bw = 4.8;               // in-node copy rate below threshold
  double ipc_cma_bw = 11.0;              // in-node CMA large-copy rate
  std::size_t ipc_cma_threshold = 64 * 1024;
  sim::SimTime ipc_latency_ns = 300;

  /// Host-copy rate of one in-node transfer, mirroring
  /// netsim::IpcChannel::copy_bw's shm-vs-CMA size split.
  double ipc_host_bw(std::size_t bytes) const {
    return bytes >= ipc_cma_threshold ? ipc_cma_bw : ipc_shm_bw;
  }
};

/// One rank's collective-algorithm engine; owned by its RankComm. All
/// communication goes through the owner's isend/irecv/wait, so eager vs
/// rendezvous protocol choice, reliability and transport routing apply to
/// collective traffic exactly as to point-to-point traffic.
///
/// Hang-free guarantee (docs/RELIABILITY.md, "Collective abort"): every
/// blocking wait inside a collective runs through coll_wait with a
/// liveness watchdog, and any failure — a p2p transfer exhausting its
/// retry budget, an incoming COLL_ABORT wave, or watchdog expiry — aborts
/// the whole operation: the rank broadcasts the wave to the group, parks
/// its scratch buffers (stale messages of the abandoned operation may
/// still deliver into them), poisons the communicator context (per-step
/// tags are reused across calls, so no later collective on it is safe)
/// and surfaces a clean RequestError. No surviving rank blocks forever.
class CollEngine {
 public:
  explicit CollEngine(RankComm& comm) : comm_(comm) {}
  CollEngine(const CollEngine&) = delete;
  CollEngine& operator=(const CollEngine&) = delete;

  void set_cost_hints(const CollCostHints& h) { hints_ = h; }
  const CollCostHints& cost_hints() const { return hints_; }
  const CollStats& stats() const { return stats_; }

  void barrier(const CommGroup& g);
  void bcast(void* buf, int count, const Datatype& dtype, int root,
             const CommGroup& g);
  void allreduce_doubles(const double* sendbuf, double* recvbuf, int count,
                         bool take_max, const CommGroup& g);
  void allgather(const void* sendbuf, int count, const Datatype& dtype,
                 void* recvbuf, const CommGroup& g);
  void alltoall(const void* sendbuf, void* recvbuf, int count,
                const Datatype& dtype, const CommGroup& g);
  void gather(const void* sendbuf, int count, const Datatype& dtype,
              void* recvbuf, int root, const CommGroup& g);
  void scatter(const void* sendbuf, void* recvbuf, int count,
               const Datatype& dtype, int root, const CommGroup& g);

 private:
  /// Node map of one communicator: nodes appear in order of first
  /// appearance by comm rank, members in ascending comm rank, the leader
  /// is the lowest comm rank on the node. Every member computes the same
  /// map, so phase schedules agree without negotiation.
  struct Topology {
    std::vector<int> node_of;               // comm rank -> dense node index
    std::vector<std::vector<int>> members;  // node index -> comm ranks
    std::vector<int> leaders;               // node index -> leading comm rank
    int my_node = 0;
    bool multi_rank_node = false;  // some node hosts >= 2 comm ranks

    int num_nodes() const { return static_cast<int>(members.size()); }
  };
  Topology map_nodes(const CommGroup& g) const;
  bool use_hier(const Topology& t, std::size_t bytes) const;

  // Un-guarded algorithm bodies (one per public op).
  void barrier_impl(const CommGroup& g);
  void bcast_impl(void* buf, int count, const Datatype& dtype, int root,
                  const CommGroup& g);
  void allreduce_impl(const double* sendbuf, double* recvbuf, int count,
                      bool take_max, const CommGroup& g);
  void allgather_impl(const void* sendbuf, int count, const Datatype& dtype,
                      void* recvbuf, const CommGroup& g);
  void alltoall_impl(const void* sendbuf, void* recvbuf, int count,
                     const Datatype& dtype, const CommGroup& g);
  void gather_impl(const void* sendbuf, int count, const Datatype& dtype,
                   void* recvbuf, int root, const CommGroup& g);
  void scatter_impl(const void* sendbuf, void* recvbuf, int count,
                    const Datatype& dtype, int root, const CommGroup& g);

  /// Run one collective body under the abort protocol: registers the call
  /// with coll_begin (throws if the context is poisoned), converts any
  /// failure inside into an abort wave + clean RequestError, and releases
  /// (or parks) the scratch buffers.
  template <typename Fn>
  void run_guarded(const CommGroup& g, Fn&& body);
  /// Watchdogged wait used by every algorithm step (see coll_wait).
  void cwait(Request& r);
  /// Worst-case p2p retry budget (sender plus receiver watchdog backoff
  /// series) times coll_watchdog_factor: the deadline of one cwait.
  sim::SimTime watchdog_budget() const;
  void abort_collective(const CommGroup& g, std::uint64_t seq, int origin);

  /// Allocate collective scratch that survives an abort: kept in scratch_
  /// while the op runs, freed on normal completion, parked in the owning
  /// RankComm on abort (stale messages may still deliver into it). Stack
  /// temporaries must never back a posted receive in a collective.
  template <typename T>
  T* scratch(std::size_t n) {
    auto v = std::make_shared<std::vector<T>>(n);
    T* p = v->data();
    scratch_.push_back(std::move(v));
    return p;
  }

  // Primitives shared between the flat path and the leader/intra legs.
  // They run over an ordered subgroup of comm ranks; `me` is this rank's
  // index within `ranks`.
  void dissemination(CollOpStats& op, const CommGroup& g,
                     const std::vector<int>& ranks, int me, int tag_base);
  void binomial_bcast(CollOpStats& op, const CommGroup& g,
                      const std::vector<int>& ranks, int me, int root_idx,
                      void* buf, int count, const Datatype& dtype, int tag);
  void rd_allreduce(CollOpStats& op, const CommGroup& g,
                    const std::vector<int>& ranks, int me, double* recvbuf,
                    int count, bool take_max);

  Request isend_counted(CollOpStats& op, const void* buf, int count,
                        const Datatype& dtype, int dst_world, int tag,
                        int context);
  /// irecv that registers the request in inflight_ (as isend_counted does
  /// for sends) so abort_collective can cancel it. Every receive a
  /// collective body posts must go through this wrapper.
  Request irecv_track(void* buf, int count, const Datatype& dtype, int src,
                      int tag, int context);

  RankComm& comm_;
  CollCostHints hints_;
  CollStats stats_;

  // Abort-protocol state of the collective currently on this rank's stack
  // (collectives never nest, so one slot suffices).
  int cur_context_ = 0;
  std::uint64_t cur_seq_ = 0;
  sim::SimTime wait_budget_ = 0;
  std::vector<std::shared_ptr<void>> scratch_;
  // Every request the running collective posted (shared handles; cheap).
  // Cleared on normal completion; on abort each one is canceled — an
  // abandoned isend whose matching receive will never be posted (the peer
  // aborted too) would otherwise retransmit its RTS forever, because the
  // peer's unmatched-RTS ack keeps resetting the sender's retry budget,
  // and finalize's drain_pending would never return.
  std::vector<Request> inflight_;
};

}  // namespace mv2gnc::mpisim::detail
