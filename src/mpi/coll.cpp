#include "mpi/coll.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace mv2gnc::mpisim::detail {

namespace {

// Internal (negative) tags used by collectives; wildcard receives never
// match them. The first block keeps its historical values so the flat
// barrier/bcast/gather/scatter paths stay byte-identical to the
// pre-engine implementations. Families that offset by a per-step or
// per-block index get 2^16-wide ranges so offsets can never run into the
// next base.
constexpr int kTagBarrier = -100;   // flat dissemination: - round
constexpr int kTagBcast = -200;     // flat binomial bcast
constexpr int kTagReduce = -300;    // hier intra-node reduce leg
constexpr int kTagGather = -400;
constexpr int kTagScatter = -500;
constexpr int kTagAlltoall = -600;  // self-delivery of the diagonal block

constexpr int kTagSpan = 1 << 16;
constexpr int kTagAlltoallStep = -1 * kTagSpan;   // - pairwise step
constexpr int kTagAllreduceRd = -2 * kTagSpan;    // - butterfly round
constexpr int kTagAllreducePair = -3 * kTagSpan;  // -0 fold-in, -1 fold-out
constexpr int kTagAgBlock = -4 * kTagSpan;        // - block owner comm rank
constexpr int kTagBarrierFan = -5 * kTagSpan;     // -0 fan-in, -1 fan-out
constexpr int kTagBarrierLeader = -6 * kTagSpan;  // - round
constexpr int kTagReduceBcast = -7 * kTagSpan;    // hier result bcast
constexpr int kTagBcastLeader = -8 * kTagSpan;    // hier leader binomial
constexpr int kTagBcastIntra = -9 * kTagSpan;     // hier intra binomial
constexpr int kTagAllreduceRs = -10 * kTagSpan;   // intra reduce-scatter: -step
constexpr int kTagAllreduceAg = -11 * kTagSpan;   // intra slice allgather: -step
// Tag spans -12 .. -18 belong to the device-buffer sliced pipelines; see
// src/mpi/coll_device.cpp.

Datatype committed_byte() {
  Datatype t = Datatype::byte();
  t.commit();
  return t;
}

Datatype committed_double() {
  Datatype t = Datatype::float64();
  t.commit();
  return t;
}

int index_of(const std::vector<int>& v, int value) {
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (v[i] == value) return static_cast<int>(i);
  }
  return -1;
}

std::vector<int> identity_ranks(int p) {
  std::vector<int> r(static_cast<std::size_t>(p));
  std::iota(r.begin(), r.end(), 0);
  return r;
}

// Common member count when every node hosts the same number of the
// group's ranks, else 0. The striped two-level schemes pair member j of
// each node with its counterparts, so they need a rectangular topology;
// ragged groups (e.g. after an uneven split) take the leader-based path.
int uniform_node_size(const std::vector<std::vector<int>>& members) {
  const std::size_t n = members.front().size();
  for (const std::vector<int>& m : members) {
    if (m.size() != n) return 0;
  }
  return static_cast<int>(n);
}

void reduce_into(double* acc, const double* in, int count, bool take_max) {
  for (int i = 0; i < count; ++i) {
    acc[i] = take_max ? std::max(acc[i], in[i]) : acc[i] + in[i];
  }
}

}  // namespace

Request CollEngine::isend_counted(CollOpStats& op, const void* buf, int count,
                                  const Datatype& dtype, int dst_world,
                                  int tag, int context) {
  op.bytes_sent += dtype.size() * static_cast<std::size_t>(count);
  Request r = comm_.isend(buf, count, dtype, dst_world, tag, context);
  inflight_.push_back(r);
  return r;
}

Request CollEngine::irecv_track(void* buf, int count, const Datatype& dtype,
                                int src, int tag, int context) {
  Request r = comm_.irecv(buf, count, dtype, src, tag, context);
  inflight_.push_back(r);
  return r;
}

// ---------------------------------------------------------------------------
// Abort protocol (docs/RELIABILITY.md, "Collective abort")
// ---------------------------------------------------------------------------

sim::SimTime CollEngine::watchdog_budget() const {
  const core::Tunables& tun = comm_.tunables();
  // The p2p layer's worst case: a receiver watchdog spends twice the
  // sender's budget (see RndvRecv::handle_timeout), i.e. the backoff
  // series up to 2 * rndv_max_retries. Scale by coll_watchdog_factor so a
  // struggling-but-recovering transfer never trips the collective
  // watchdog before the p2p layer has resolved it one way or the other.
  // Saturate like backoff_deadline in rndv.cpp: generous retry configs
  // (large rndv_max_retries with exponential backoff) would overflow
  // SimTime; a ~11-virtual-day deadline is "never" for any simulation.
  constexpr double kCapNs = 1e15;
  double budget = 0.0;
  double step = static_cast<double>(tun.rndv_timeout_ns);
  for (std::size_t i = 0; i <= 2 * tun.rndv_max_retries; ++i) {
    budget += step;
    step *= tun.rndv_backoff_factor;
    if (!(budget < kCapNs)) break;
  }
  budget *= tun.coll_watchdog_factor;
  if (!(budget < kCapNs)) budget = kCapNs;
  return static_cast<sim::SimTime>(budget);
}

void CollEngine::cwait(Request& r) {
  comm_.coll_wait(r, nullptr, cur_context_, cur_seq_,
                  comm_.engine().now() + wait_budget_);
}

void CollEngine::abort_collective(const CommGroup& g, std::uint64_t seq,
                                  int origin) {
  // Order matters: park the scratch before the wave goes out, so even if
  // posting the wave itself threw, no freed buffer could back a still-
  // posted receive of the abandoned operation.
  comm_.park_scratch(std::move(scratch_));
  scratch_.clear();
  settle_coll_slots(/*aborted=*/true);
  comm_.coll_send_abort_wave(g, seq, origin);
  // Withdraw every still-open request of the abandoned operation. Receives
  // are local; sends retract their RTS from the peer (RndvSend::cancel).
  // Without this, an isend whose matching receive will never be posted —
  // its peer aborted the same collective — stays alive indefinitely and
  // strands finalize's drain_pending.
  for (Request& r : inflight_) comm_.cancel_request(r);
  inflight_.clear();
}

template <typename Fn>
void CollEngine::run_guarded(const CommGroup& g, Fn&& body) {
  // Throws RequestError immediately when the context is already poisoned
  // by an earlier abort — before any message goes out.
  const std::uint64_t seq = comm_.coll_begin(g.context);
  cur_context_ = g.context;
  cur_seq_ = seq;
  wait_budget_ = watchdog_budget();
  try {
    body();
    scratch_.clear();  // completed: nothing can deliver into scratch anymore
    settle_coll_slots(/*aborted=*/false);
    inflight_.clear();
  } catch (const RequestError& e) {
    // A p2p leg of this collective failed permanently: this rank is the
    // abort origin.
    abort_collective(g, seq, comm_.rank());
    throw RequestError("collective #" + std::to_string(seq) +
                       " on context " + std::to_string(g.context) +
                       " aborted (origin rank " + std::to_string(comm_.rank()) +
                       "): " + e.what());
  } catch (const CollAbortObserved& a) {
    // Another rank aborted (possibly an earlier collective whose wave
    // raced ahead); forward the wave — redundant receipts are idempotent,
    // and forwarding covers members whose copy was dropped.
    abort_collective(g, a.seq, a.origin);
    throw RequestError("collective #" + std::to_string(seq) +
                       " on context " + std::to_string(g.context) +
                       " aborted by COLL_ABORT wave from rank " +
                       std::to_string(a.origin));
  } catch (const CollWatchdogExpired&) {
    abort_collective(g, seq, comm_.rank());
    throw RequestError("collective #" + std::to_string(seq) +
                       " on context " + std::to_string(g.context) +
                       " aborted: liveness watchdog expired (origin rank " +
                       std::to_string(comm_.rank()) + ")");
  }
  // RankCrashed deliberately passes through untouched: a crashed rank
  // sends no wave — its peers detect the silence themselves.
}

void CollEngine::barrier(const CommGroup& g) {
  run_guarded(g, [&] { barrier_impl(g); });
}

void CollEngine::bcast(void* buf, int count, const Datatype& dtype, int root,
                       const CommGroup& g) {
  run_guarded(g, [&] { bcast_impl(buf, count, dtype, root, g); });
}

void CollEngine::allreduce_doubles(const double* sendbuf, double* recvbuf,
                                   int count, bool take_max,
                                   const CommGroup& g) {
  run_guarded(g,
              [&] { allreduce_impl(sendbuf, recvbuf, count, take_max, g); });
}

void CollEngine::allgather(const void* sendbuf, int count,
                           const Datatype& dtype, void* recvbuf,
                           const CommGroup& g) {
  run_guarded(g,
              [&] { allgather_impl(sendbuf, count, dtype, recvbuf, g); });
}

void CollEngine::alltoall(const void* sendbuf, void* recvbuf, int count,
                          const Datatype& dtype, const CommGroup& g) {
  run_guarded(g,
              [&] { alltoall_impl(sendbuf, recvbuf, count, dtype, g); });
}

void CollEngine::gather(const void* sendbuf, int count, const Datatype& dtype,
                        void* recvbuf, int root, const CommGroup& g) {
  run_guarded(
      g, [&] { gather_impl(sendbuf, count, dtype, recvbuf, root, g); });
}

void CollEngine::scatter(const void* sendbuf, void* recvbuf, int count,
                         const Datatype& dtype, int root, const CommGroup& g) {
  run_guarded(
      g, [&] { scatter_impl(sendbuf, recvbuf, count, dtype, root, g); });
}

CollEngine::Topology CollEngine::map_nodes(const CommGroup& g) const {
  Topology t;
  // Tunables::validate() rejects ranks_per_node == 0, but a RankComm can be
  // handed tunables that never went through it (mutated in place by a test
  // or bench); clamp rather than divide by zero.
  const int rpn =
      std::max(1, static_cast<int>(comm_.tunables().ranks_per_node));
  const int p = g.size();
  t.node_of.resize(static_cast<std::size_t>(p));
  std::vector<int> phys;  // dense index -> physical node id
  for (int i = 0; i < p; ++i) {
    const int node = g.world[static_cast<std::size_t>(i)] / rpn;
    int dense = index_of(phys, node);
    if (dense < 0) {
      dense = static_cast<int>(phys.size());
      phys.push_back(node);
      t.members.emplace_back();
      t.leaders.push_back(i);
    }
    t.node_of[static_cast<std::size_t>(i)] = dense;
    t.members[static_cast<std::size_t>(dense)].push_back(i);
    if (t.members[static_cast<std::size_t>(dense)].size() > 1) {
      t.multi_rank_node = true;
    }
    if (i == g.my_rank) t.my_node = dense;
  }
  return t;
}

bool CollEngine::use_hier(const Topology& t, std::size_t bytes,
                          bool device) const {
  const core::Tunables& tun = comm_.tunables();
  if (!t.multi_rank_node) return false;  // flat topology: nothing to split
  switch (tun.coll_select) {
    case core::CollSelect::kFlat: return false;
    case core::CollSelect::kHier: return true;
    case core::CollSelect::kAuto: break;
  }
  // Without the IPC channel the "intra-node" leg rides the fabric too, so
  // the split only adds phases.
  if (tun.transport_select != core::TransportSelect::kAuto) return false;
  // Every rank must reach the same verdict or the group mixes algorithms
  // (mismatched tags, deadlock), so the sketch below may only consume
  // rank-invariant inputs: t.members is identical on every member (the map
  // is a pure function of the group), t.my_node is NOT. On ragged
  // topologies there is no single per-node member count and the striped
  // schemes don't apply; stay flat rather than guess.
  const int uniform = uniform_node_size(t.members);
  if (uniform < 2) return false;
  // Butterfly-shaped cost sketch from the hints. The flat algorithms
  // already route co-located hops over IPC, so the flat estimate charges
  // fabric rounds only for the across-node part of the butterfly. The
  // two-level estimate pays two extra intra phases (reduce-scatter +
  // allgather) but stripes the inter-node leg across every member's HCA,
  // so each fabric round carries 1/n of the bytes. Host-copy rates follow
  // the IPC channel's shm-vs-CMA size split: flat intra rounds move the
  // whole payload, the striped intra phases move 1/n slices.
  const double bytes_d = static_cast<double>(bytes);
  const double n = static_cast<double>(uniform);
  const double nodes = static_cast<double>(t.num_nodes());
  auto rounds = [](double x) {
    return std::ceil(std::log2(std::max(x, 1.0)));
  };
  const double fab = static_cast<double>(hints_.fabric_latency_ns);
  const double ipc = static_cast<double>(hints_.ipc_latency_ns);
  const double flat_ipc_bw = hints_.ipc_host_bw(bytes);
  const double hier_ipc_bw =
      hints_.ipc_host_bw(bytes / static_cast<std::size_t>(uniform));
  const double flat = rounds(nodes) * (fab + bytes_d / hints_.fabric_bw) +
                      rounds(n) * (ipc + bytes_d / flat_ipc_bw);
  const double hier =
      2.0 * (ipc + (bytes_d * (n - 1.0) / n) / hier_ipc_bw) +
      rounds(nodes) * (fab + (bytes_d / n) / hints_.fabric_bw);
  if (!device) return hier < flat;
  // Device-resident buffers change both sides of the ledger. Flat stages
  // the full vector across PCIe once each way around the host butterfly.
  // Two-level keeps the intra reduce-scatter/allgather rings on the
  // device-direct IPC peer-copy path (no host bounce), pays the ring folds
  // as reduction kernels, and only the owned 1/n stripe crosses PCIe for
  // the inter-node butterfly. Still rank-invariant: bytes, n, nodes and
  // hints only.
  const double pcie = hints_.pcie_bw();
  const double launch = static_cast<double>(hints_.copy_launch_ns);
  const double dev_flat = flat + 2.0 * (launch + bytes_d / pcie);
  const double dev_hier =
      2.0 * (ipc + (bytes_d * (n - 1.0) / n) / hints_.ipc_peer_bw) +
      (n - 1.0) * static_cast<double>(hints_.reduce_time(
                      bytes / static_cast<std::size_t>(uniform))) +
      rounds(nodes) * (fab + (bytes_d / n) / hints_.fabric_bw) +
      2.0 * (launch + (bytes_d / n) / pcie);
  return dev_hier < dev_flat;
}

// ---------------------------------------------------------------------------
// Shared primitives
// ---------------------------------------------------------------------------

void CollEngine::dissemination(CollOpStats& op, const CommGroup& g,
                               const std::vector<int>& ranks, int me,
                               int tag_base) {
  static const Datatype byte_t = committed_byte();
  const int p = static_cast<int>(ranks.size());
  char* token = scratch<char>(1);
  int round = 0;
  for (int mask = 1; mask < p; mask <<= 1, ++round) {
    const int dst =
        g.world[static_cast<std::size_t>(ranks[static_cast<std::size_t>(
            (me + mask) % p)])];
    const int src =
        g.world[static_cast<std::size_t>(ranks[static_cast<std::size_t>(
            (me - mask + p) % p)])];
    Request sreq =
        isend_counted(op, token, 1, byte_t, dst, tag_base - round, g.context);
    Request rreq = irecv_track(token, 1, byte_t, src, tag_base - round,
                               g.context);
    cwait(sreq);
    cwait(rreq);
  }
}

void CollEngine::binomial_bcast(CollOpStats& op, const CommGroup& g,
                                const std::vector<int>& ranks, int me,
                                int root_idx, void* buf, int count,
                                const Datatype& dtype, int tag) {
  const int p = static_cast<int>(ranks.size());
  if (p <= 1) return;
  const int relative = (me - root_idx + p) % p;
  auto world_of = [&](int rel) {
    return g.world[static_cast<std::size_t>(
        ranks[static_cast<std::size_t>((rel + root_idx) % p)])];
  };
  int mask = 1;
  while (mask < p) {
    if (relative & mask) {
      Request r = irecv_track(buf, count, dtype, world_of(relative - mask),
                              tag, g.context);
      cwait(r);
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    if (relative + mask < p) {
      Request sr = isend_counted(op, buf, count, dtype,
                                 world_of(relative + mask), tag, g.context);
      cwait(sr);
    }
    mask >>= 1;
  }
}

void CollEngine::rd_allreduce(CollOpStats& op, const CommGroup& g,
                              const std::vector<int>& ranks, int me,
                              double* recvbuf, int count, bool take_max) {
  static const Datatype double_t = committed_double();
  const int p = static_cast<int>(ranks.size());
  if (p <= 1) return;
  auto world_of = [&](int idx) {
    return g.world[static_cast<std::size_t>(
        ranks[static_cast<std::size_t>(idx)])];
  };
  double* tmp = scratch<double>(static_cast<std::size_t>(count));
  int pof2 = 1;
  while (pof2 * 2 <= p) pof2 *= 2;
  const int rem = p - pof2;
  // Non-power-of-two: the first 2*rem ranks pair up; the even member of
  // each pair folds its vector into the odd one and sits the butterfly
  // out (MPICH's classic pre/post step).
  int newrank;
  if (me < 2 * rem) {
    if (me % 2 == 0) {
      Request s = isend_counted(op, recvbuf, count, double_t, world_of(me + 1),
                                kTagAllreducePair - 0, g.context);
      cwait(s);
      newrank = -1;
    } else {
      Request r = irecv_track(tmp, count, double_t, world_of(me - 1),
                              kTagAllreducePair - 0, g.context);
      cwait(r);
      reduce_into(recvbuf, tmp, count, take_max);
      newrank = me / 2;
    }
  } else {
    newrank = me - rem;
  }
  if (newrank >= 0) {
    int round = 0;
    for (int mask = 1; mask < pof2; mask <<= 1, ++round) {
      const int newdst = newrank ^ mask;
      const int dst_idx = newdst < rem ? newdst * 2 + 1 : newdst + rem;
      const int dst = world_of(dst_idx);
      Request rr = irecv_track(tmp, count, double_t, dst,
                               kTagAllreduceRd - round, g.context);
      Request sr = isend_counted(op, recvbuf, count, double_t, dst,
                                 kTagAllreduceRd - round, g.context);
      cwait(sr);
      cwait(rr);
      reduce_into(recvbuf, tmp, count, take_max);
    }
  }
  if (me < 2 * rem) {
    if (me % 2 == 0) {
      Request r = irecv_track(recvbuf, count, double_t, world_of(me + 1),
                              kTagAllreducePair - 1, g.context);
      cwait(r);
    } else {
      Request s = isend_counted(op, recvbuf, count, double_t, world_of(me - 1),
                                kTagAllreducePair - 1, g.context);
      cwait(s);
    }
  }
}

// ---------------------------------------------------------------------------
// Barrier
// ---------------------------------------------------------------------------

void CollEngine::barrier_impl(const CommGroup& g) {
  CollOpStats& op = stats_.barrier;
  ++op.calls;
  const Topology t = map_nodes(g);
  if (!use_hier(t, 1)) {
    ++op.leader_phases;
    dissemination(op, g, identity_ranks(g.size()), g.my_rank, kTagBarrier);
    return;
  }
  ++op.hier_calls;
  static const Datatype byte_t = committed_byte();
  char* token = scratch<char>(1);
  const std::vector<int>& mem = t.members[static_cast<std::size_t>(t.my_node)];
  const int leader = t.leaders[static_cast<std::size_t>(t.my_node)];
  // Intra fan-in: every member reports to its node leader.
  if (mem.size() > 1) {
    ++op.intra_phases;
    if (g.my_rank == leader) {
      std::vector<Request> rs;
      for (int m : mem) {
        if (m == leader) continue;
        rs.push_back(irecv_track(token, 1, byte_t,
                                 g.world[static_cast<std::size_t>(m)],
                                 kTagBarrierFan - 0, g.context));
      }
      for (Request& r : rs) cwait(r);
    } else {
      Request s = isend_counted(op, token, 1, byte_t,
                                g.world[static_cast<std::size_t>(leader)],
                                kTagBarrierFan - 0, g.context);
      cwait(s);
    }
  }
  // Leader dissemination across nodes (the only fabric traffic).
  if (g.my_rank == leader && t.num_nodes() > 1) {
    ++op.leader_phases;
    dissemination(op, g, t.leaders, t.my_node, kTagBarrierLeader);
  }
  // Intra fan-out: the leader releases its members.
  if (mem.size() > 1) {
    ++op.intra_phases;
    if (g.my_rank == leader) {
      std::vector<Request> ss;
      for (int m : mem) {
        if (m == leader) continue;
        ss.push_back(isend_counted(op, token, 1, byte_t,
                                   g.world[static_cast<std::size_t>(m)],
                                   kTagBarrierFan - 1, g.context));
      }
      for (Request& s : ss) cwait(s);
    } else {
      Request r = irecv_track(token, 1, byte_t,
                              g.world[static_cast<std::size_t>(leader)],
                              kTagBarrierFan - 1, g.context);
      cwait(r);
    }
  }
}

// ---------------------------------------------------------------------------
// Bcast
// ---------------------------------------------------------------------------

void CollEngine::bcast_impl(void* buf, int count, const Datatype& dtype, int root,
                       const CommGroup& g) {
  CollOpStats& op = stats_.bcast;
  ++op.calls;
  // Device-resident contiguous payloads take the staged/pipelined device
  // path; non-contiguous device types keep the legacy pass-through (the
  // rendezvous layer packs them per message).
  if (dtype.is_contiguous() && device_buffer(buf)) {
    device_bcast(op, buf, count, dtype, root, g);
    return;
  }
  bcast_wire(op, buf, count, dtype, root, g);
}

void CollEngine::bcast_wire(CollOpStats& op, void* buf, int count,
                            const Datatype& dtype, int root,
                            const CommGroup& g) {
  const int p = g.size();
  if (p == 1) return;
  Topology t = map_nodes(g);
  const std::size_t bytes = dtype.size() * static_cast<std::size_t>(count);
  if (!use_hier(t, bytes)) {
    ++op.leader_phases;
    binomial_bcast(op, g, identity_ranks(p), g.my_rank, root, buf, count,
                   dtype, kTagBcast);
    return;
  }
  ++op.hier_calls;
  // The root leads its own node, so the payload enters both legs from it.
  const int root_node = t.node_of[static_cast<std::size_t>(root)];
  t.leaders[static_cast<std::size_t>(root_node)] = root;
  const std::vector<int>& mem = t.members[static_cast<std::size_t>(t.my_node)];
  const int leader = t.leaders[static_cast<std::size_t>(t.my_node)];
  if (g.my_rank == leader && t.num_nodes() > 1) {
    ++op.leader_phases;
    binomial_bcast(op, g, t.leaders, t.my_node, root_node, buf, count, dtype,
                   kTagBcastLeader);
  }
  if (mem.size() > 1) {
    ++op.intra_phases;
    binomial_bcast(op, g, mem, index_of(mem, g.my_rank),
                   index_of(mem, leader), buf, count, dtype, kTagBcastIntra);
  }
}

// ---------------------------------------------------------------------------
// Allreduce (doubles, sum/max)
// ---------------------------------------------------------------------------

void CollEngine::allreduce_impl(const double* sendbuf, double* recvbuf,
                                   int count, bool take_max,
                                   const CommGroup& g) {
  CollOpStats& op = stats_.allreduce;
  ++op.calls;
  if (device_buffer(sendbuf) || device_buffer(recvbuf)) {
    device_allreduce(op, sendbuf, recvbuf, count, take_max, g);
    return;
  }
  std::copy(sendbuf, sendbuf + count, recvbuf);
  if (g.size() == 1) return;
  allreduce_wire(op, recvbuf, count, take_max, g);
}

void CollEngine::allreduce_wire(CollOpStats& op, double* recvbuf, int count,
                                bool take_max, const CommGroup& g) {
  static const Datatype double_t = committed_double();
  const Topology t = map_nodes(g);
  const std::size_t bytes = sizeof(double) * static_cast<std::size_t>(count);
  if (!use_hier(t, bytes)) {
    ++op.leader_phases;
    rd_allreduce(op, g, identity_ranks(g.size()), g.my_rank, recvbuf, count,
                 take_max);
    return;
  }
  ++op.hier_calls;
  const std::vector<int>& mem = t.members[static_cast<std::size_t>(t.my_node)];
  const int leader = t.leaders[static_cast<std::size_t>(t.my_node)];
  const int uniform = uniform_node_size(t.members);
  if (uniform > 1 && count >= uniform) {
    // Striped two-level allreduce: an intra-node ring reduce-scatter
    // leaves member j owning the node-reduced slice j; member j then runs
    // the recursive-doubling butterfly with its counterparts on the other
    // nodes (all n HCAs active in parallel, each on 1/n of the vector);
    // an intra-node ring allgather reassembles the full result. Versus
    // the flat butterfly this trades two cheap IPC phases for an n-fold
    // cut in per-round fabric bytes.
    const int n = uniform;
    const int me_local = index_of(mem, g.my_rank);
    const int q = count / n;
    const int r = count % n;
    auto slice_start = [&](int j) { return j * q + std::min(j, r); };
    auto slice_len = [&](int j) { return q + (j < r ? 1 : 0); };
    const int right = g.world[static_cast<std::size_t>(
        mem[static_cast<std::size_t>((me_local + 1) % n)])];
    const int left = g.world[static_cast<std::size_t>(
        mem[static_cast<std::size_t>((me_local - 1 + n) % n)])];
    double* tmp = scratch<double>(static_cast<std::size_t>(q + (r ? 1 : 0)));
    // Phase A: ring reduce-scatter. At step s member i forwards the
    // partial slice (i - s - 1) mod n and folds the arriving slice
    // (i - s - 2) mod n, so slice j circles the ring accumulating in a
    // fixed member order and lands fully reduced on member j.
    ++op.intra_phases;
    for (int s = 0; s < n - 1; ++s) {
      const int sj = ((me_local - s - 1) % n + n) % n;
      const int rj = ((me_local - s - 2) % n + n) % n;
      Request rr = irecv_track(tmp, slice_len(rj), double_t, left,
                               kTagAllreduceRs - s, g.context);
      Request sr = isend_counted(op, recvbuf + slice_start(sj), slice_len(sj),
                                 double_t, right, kTagAllreduceRs - s,
                                 g.context);
      cwait(sr);
      cwait(rr);
      reduce_into(recvbuf + slice_start(rj), tmp, slice_len(rj),
                  take_max);
    }
    // Phase B: per-stripe butterfly over the fabric. Counterpart members
    // (local index j on every node) allreduce slice j among themselves.
    if (t.num_nodes() > 1) {
      ++op.leader_phases;
      std::vector<int> stripe_group;
      stripe_group.reserve(t.members.size());
      for (const std::vector<int>& node_mem : t.members) {
        stripe_group.push_back(node_mem[static_cast<std::size_t>(me_local)]);
      }
      rd_allreduce(op, g, stripe_group, t.my_node,
                   recvbuf + slice_start(me_local), slice_len(me_local),
                   take_max);
    }
    // Phase C: ring allgather of the reduced slices.
    ++op.intra_phases;
    for (int s = 0; s < n - 1; ++s) {
      const int sj = ((me_local - s) % n + n) % n;
      const int rj = ((me_local - s - 1) % n + n) % n;
      Request rr = irecv_track(recvbuf + slice_start(rj), slice_len(rj),
                               double_t, left, kTagAllreduceAg - s, g.context);
      Request sr = isend_counted(op, recvbuf + slice_start(sj), slice_len(sj),
                                 double_t, right, kTagAllreduceAg - s,
                                 g.context);
      cwait(sr);
      cwait(rr);
    }
    return;
  }
  // Ragged topology (or fewer elements than members): fold into the node
  // leader, butterfly across leaders, broadcast back.
  if (mem.size() > 1) {
    ++op.intra_phases;
    if (g.my_rank == leader) {
      double* tmp = scratch<double>(static_cast<std::size_t>(count));
      for (int m : mem) {
        if (m == leader) continue;
        Request r = irecv_track(tmp, count, double_t,
                                g.world[static_cast<std::size_t>(m)],
                                kTagReduce, g.context);
        cwait(r);
        reduce_into(recvbuf, tmp, count, take_max);
      }
    } else {
      Request s = isend_counted(op, recvbuf, count, double_t,
                                g.world[static_cast<std::size_t>(leader)],
                                kTagReduce, g.context);
      cwait(s);
    }
  }
  // Leader butterfly over the fabric.
  if (g.my_rank == leader && t.num_nodes() > 1) {
    ++op.leader_phases;
    rd_allreduce(op, g, t.leaders, t.my_node, recvbuf, count, take_max);
  }
  // Intra bcast of the reduced vector.
  if (mem.size() > 1) {
    ++op.intra_phases;
    binomial_bcast(op, g, mem, index_of(mem, g.my_rank),
                   index_of(mem, leader), recvbuf, count, double_t,
                   kTagReduceBcast);
  }
}

// ---------------------------------------------------------------------------
// Allgather
// ---------------------------------------------------------------------------

void CollEngine::allgather_impl(const void* sendbuf, int count,
                           const Datatype& dtype, void* recvbuf,
                           const CommGroup& g) {
  CollOpStats& op = stats_.allgather;
  ++op.calls;
  if (dtype.is_contiguous() &&
      (device_buffer(sendbuf) || device_buffer(recvbuf))) {
    device_allgather(op, sendbuf, count, dtype, recvbuf, g);
    return;
  }
  allgather_wire(op, sendbuf, count, dtype, recvbuf, g);
}

void CollEngine::allgather_wire(CollOpStats& op, const void* sendbuf,
                                int count, const Datatype& dtype,
                                void* recvbuf, const CommGroup& g) {
  const std::size_t block = static_cast<std::size_t>(dtype.extent()) *
                            static_cast<std::size_t>(count);
  const int p = g.size();
  const int my = g.my_rank;
  auto* out = static_cast<std::byte*>(recvbuf);
  // Own contribution through the p2p self path, so device buffers work
  // uniformly. Every transmission of rank r's block — in any phase — uses
  // tag kTagAgBlock - r; a given ordered pair carries a block at most once
  // per call, so the envelope (src, tag, context) stays unambiguous.
  {
    Request rr = irecv_track(out + static_cast<std::size_t>(my) * block,
                             count, dtype, g.world[static_cast<std::size_t>(my)],
                             kTagAgBlock - my, g.context);
    Request sr = isend_counted(op, sendbuf, count, dtype,
                               g.world[static_cast<std::size_t>(my)],
                               kTagAgBlock - my, g.context);
    cwait(sr);
    cwait(rr);
  }
  if (p == 1) return;
  const Topology t = map_nodes(g);
  if (!use_hier(t, block)) {
    // Flat ring: direct block exchange, no root round-trip. Step s moves
    // block (my - s) right and receives block (my - s - 1) from the left.
    ++op.leader_phases;
    const int right = g.world[static_cast<std::size_t>((my + 1) % p)];
    const int left = g.world[static_cast<std::size_t>((my - 1 + p) % p)];
    for (int s = 0; s < p - 1; ++s) {
      const int sendb = (my - s + p) % p;
      const int recvb = (my - s - 1 + p) % p;
      Request rr = irecv_track(out + static_cast<std::size_t>(recvb) * block,
                               count, dtype, left, kTagAgBlock - recvb,
                               g.context);
      Request sr = isend_counted(op,
                                 out + static_cast<std::size_t>(sendb) * block,
                                 count, dtype, right, kTagAgBlock - sendb,
                                 g.context);
      cwait(sr);
      cwait(rr);
    }
    return;
  }
  ++op.hier_calls;
  const std::vector<int>& mem = t.members[static_cast<std::size_t>(t.my_node)];
  const int n = static_cast<int>(mem.size());
  const int me_local = index_of(mem, my);
  const int L = t.num_nodes();
  // Phase A: ring allgather among the node's members (IPC traffic), after
  // which everyone holds every co-located block.
  if (n > 1) {
    ++op.intra_phases;
    const int right = g.world[static_cast<std::size_t>(mem[
        static_cast<std::size_t>((me_local + 1) % n)])];
    const int left = g.world[static_cast<std::size_t>(mem[
        static_cast<std::size_t>((me_local - 1 + n) % n)])];
    for (int s = 0; s < n - 1; ++s) {
      const int sendb = mem[static_cast<std::size_t>((me_local - s + n) % n)];
      const int recvb =
          mem[static_cast<std::size_t>((me_local - s - 1 + n) % n)];
      Request rr = irecv_track(out + static_cast<std::size_t>(recvb) * block,
                               count, dtype, left, kTagAgBlock - recvb,
                               g.context);
      Request sr = isend_counted(op,
                                 out + static_cast<std::size_t>(sendb) * block,
                                 count, dtype, right, kTagAgBlock - sendb,
                                 g.context);
      cwait(sr);
      cwait(rr);
    }
  }
  if (L == 1) return;
  ++op.leader_phases;
  const int uniform = uniform_node_size(t.members);
  if (uniform > 1) {
    // Phase B, striped: member j of every node forms its own inter-node
    // ring carrying the j-th block of each node's superblock, so all n
    // HCAs move 1/n of the off-node volume in parallel (L-1 fabric steps
    // of one block each, versus L-1 steps of n blocks through a single
    // leader). Each arriving block is forwarded to the n-1 co-members
    // with non-blocking sends, so the in-node fan-out of step s overlaps
    // the fabric transfer of step s+1.
    const int d = t.my_node;
    const int rightc = g.world[static_cast<std::size_t>(
        t.members[static_cast<std::size_t>((d + 1) % L)]
                 [static_cast<std::size_t>(me_local)])];
    const int leftc = g.world[static_cast<std::size_t>(
        t.members[static_cast<std::size_t>((d - 1 + L) % L)]
                 [static_cast<std::size_t>(me_local)])];
    std::vector<Request> stripe;   // my ring's fabric receives, step order
    std::vector<Request> others;   // co-members' forwarded blocks
    for (int s = 0; s < L - 1; ++s) {
      const std::vector<int>& rnode =
          t.members[static_cast<std::size_t>((d - s - 1 + L) % L)];
      const int mb = rnode[static_cast<std::size_t>(me_local)];
      stripe.push_back(irecv_track(out + static_cast<std::size_t>(mb) * block,
                                   count, dtype, leftc, kTagAgBlock - mb,
                                   g.context));
      for (int v = 0; v < n; ++v) {
        if (v == me_local) continue;
        const int b = rnode[static_cast<std::size_t>(v)];
        others.push_back(irecv_track(
            out + static_cast<std::size_t>(b) * block, count, dtype,
            g.world[static_cast<std::size_t>(mem[static_cast<std::size_t>(v)])],
            kTagAgBlock - b, g.context));
      }
    }
    std::vector<Request> sends;
    for (int s = 0; s < L - 1; ++s) {
      const int sb = t.members[static_cast<std::size_t>((d - s + L) % L)]
                              [static_cast<std::size_t>(me_local)];
      sends.push_back(isend_counted(op,
                                    out + static_cast<std::size_t>(sb) * block,
                                    count, dtype, rightc, kTagAgBlock - sb,
                                    g.context));
      cwait(stripe[static_cast<std::size_t>(s)]);
      const int rb = t.members[static_cast<std::size_t>((d - s - 1 + L) % L)]
                              [static_cast<std::size_t>(me_local)];
      for (int v = 0; v < n; ++v) {
        if (v == me_local) continue;
        sends.push_back(isend_counted(
            op, out + static_cast<std::size_t>(rb) * block, count, dtype,
            g.world[static_cast<std::size_t>(mem[static_cast<std::size_t>(v)])],
            kTagAgBlock - rb, g.context));
      }
    }
    for (Request& qr : sends) cwait(qr);
    for (Request& qr : others) cwait(qr);
    return;
  }
  // Phase B, ragged fallback: leaders ring node superblocks over the
  // fabric and forward each arriving block to their members immediately
  // (non-blocking), so the in-node distribution overlaps the remaining
  // fabric steps instead of waiting for the full buffer.
  if (my == t.leaders[static_cast<std::size_t>(t.my_node)]) {
    const int right = g.world[static_cast<std::size_t>(t.leaders[
        static_cast<std::size_t>((t.my_node + 1) % L)])];
    const int left = g.world[static_cast<std::size_t>(t.leaders[
        static_cast<std::size_t>((t.my_node - 1 + L) % L)])];
    std::vector<Request> forwards;
    for (int s = 0; s < L - 1; ++s) {
      const int send_node = (t.my_node - s + L) % L;
      const int recv_node = (t.my_node - s - 1 + L) % L;
      std::vector<Request> step;
      for (int b : t.members[static_cast<std::size_t>(recv_node)]) {
        step.push_back(irecv_track(out + static_cast<std::size_t>(b) * block,
                                   count, dtype, left, kTagAgBlock - b,
                                   g.context));
      }
      for (int b : t.members[static_cast<std::size_t>(send_node)]) {
        step.push_back(isend_counted(
            op, out + static_cast<std::size_t>(b) * block, count, dtype,
            right, kTagAgBlock - b, g.context));
      }
      for (Request& q : step) cwait(q);
      for (int m : mem) {
        if (m == my) continue;
        for (int b : t.members[static_cast<std::size_t>(recv_node)]) {
          forwards.push_back(isend_counted(
              op, out + static_cast<std::size_t>(b) * block, count, dtype,
              g.world[static_cast<std::size_t>(m)], kTagAgBlock - b,
              g.context));
        }
      }
    }
    for (Request& q : forwards) cwait(q);
  } else {
    // Members: every off-node block arrives from the node leader.
    const int leader_world = g.world[static_cast<std::size_t>(
        t.leaders[static_cast<std::size_t>(t.my_node)])];
    std::vector<Request> rs;
    for (int node = 0; node < L; ++node) {
      if (node == t.my_node) continue;
      for (int b : t.members[static_cast<std::size_t>(node)]) {
        rs.push_back(irecv_track(out + static_cast<std::size_t>(b) * block,
                                 count, dtype, leader_world, kTagAgBlock - b,
                                 g.context));
      }
    }
    for (Request& q : rs) cwait(q);
  }
}

// ---------------------------------------------------------------------------
// Alltoall
// ---------------------------------------------------------------------------

void CollEngine::alltoall_impl(const void* sendbuf, void* recvbuf, int count,
                          const Datatype& dtype, const CommGroup& g) {
  CollOpStats& op = stats_.alltoall;
  ++op.calls;
  const std::size_t block = static_cast<std::size_t>(dtype.extent()) *
                            static_cast<std::size_t>(count);
  const int p = g.size();
  const int my = g.my_rank;
  const auto* in = static_cast<const std::byte*>(sendbuf);
  auto* out = static_cast<std::byte*>(recvbuf);
  // Diagonal block through the p2p self path.
  {
    Request rr = irecv_track(out + static_cast<std::size_t>(my) * block,
                             count, dtype, g.world[static_cast<std::size_t>(my)],
                             kTagAlltoall, g.context);
    Request sr = isend_counted(op, in + static_cast<std::size_t>(my) * block,
                               count, dtype,
                               g.world[static_cast<std::size_t>(my)],
                               kTagAlltoall, g.context);
    cwait(sr);
    cwait(rr);
  }
  if (p == 1) return;
  const Topology t = map_nodes(g);
  // Pairwise exchange: step s pairs every rank r with r+s (send) and r-s
  // (recv). All ranks run the steps in one global order, which keeps the
  // lockstep exchange deadlock-free; the hierarchical variant reorders
  // that global schedule so the steps with the most co-located pairs run
  // first (IPC) and the fabric steps spread across distinct peer nodes.
  std::vector<int> steps(static_cast<std::size_t>(p - 1));
  std::iota(steps.begin(), steps.end(), 1);
  if (use_hier(t, block)) {
    ++op.hier_calls;
    std::vector<int> colocated(static_cast<std::size_t>(p), 0);
    for (int s = 1; s < p; ++s) {
      int c = 0;
      for (int r = 0; r < p; ++r) {
        if (t.node_of[static_cast<std::size_t>(r)] ==
            t.node_of[static_cast<std::size_t>((r + s) % p)]) {
          ++c;
        }
      }
      colocated[static_cast<std::size_t>(s)] = c;
    }
    std::stable_sort(steps.begin(), steps.end(), [&](int a, int b) {
      return colocated[static_cast<std::size_t>(a)] >
             colocated[static_cast<std::size_t>(b)];
    });
  }
  for (int s : steps) {
    const int dst = (my + s) % p;
    const int src = (my - s + p) % p;
    if (t.node_of[static_cast<std::size_t>(dst)] == t.my_node) {
      ++op.intra_phases;
    } else {
      ++op.leader_phases;
    }
    Request rr = irecv_track(out + static_cast<std::size_t>(src) * block,
                             count, dtype, g.world[static_cast<std::size_t>(src)],
                             kTagAlltoallStep - s, g.context);
    Request sr = isend_counted(op, in + static_cast<std::size_t>(dst) * block,
                               count, dtype,
                               g.world[static_cast<std::size_t>(dst)],
                               kTagAlltoallStep - s, g.context);
    cwait(sr);
    cwait(rr);
  }
}

// ---------------------------------------------------------------------------
// Gather / scatter (linear, root-rooted; no hierarchical variant)
// ---------------------------------------------------------------------------

void CollEngine::gather_impl(const void* sendbuf, int count, const Datatype& dtype,
                        void* recvbuf, int root, const CommGroup& g) {
  CollOpStats& op = stats_.gather;
  ++op.calls;
  ++op.leader_phases;
  // Linear gather; self-delivery goes through the normal p2p path so
  // device buffers work uniformly.
  const std::size_t block = static_cast<std::size_t>(dtype.extent()) *
                            static_cast<std::size_t>(count);
  const int root_world = g.world[static_cast<std::size_t>(root)];
  Request sreq = isend_counted(op, sendbuf, count, dtype, root_world,
                               kTagGather, g.context);
  if (g.my_rank == root) {
    std::vector<Request> rreqs;
    rreqs.reserve(static_cast<std::size_t>(g.size()));
    for (int i = 0; i < g.size(); ++i) {
      rreqs.push_back(irecv_track(static_cast<std::byte*>(recvbuf) +
                                      static_cast<std::size_t>(i) * block,
                                  count, dtype,
                                  g.world[static_cast<std::size_t>(i)],
                                  kTagGather, g.context));
    }
    for (Request& r : rreqs) cwait(r);
  }
  cwait(sreq);
}

void CollEngine::scatter_impl(const void* sendbuf, void* recvbuf, int count,
                         const Datatype& dtype, int root, const CommGroup& g) {
  CollOpStats& op = stats_.scatter;
  ++op.calls;
  ++op.leader_phases;
  const std::size_t block = static_cast<std::size_t>(dtype.extent()) *
                            static_cast<std::size_t>(count);
  const int root_world = g.world[static_cast<std::size_t>(root)];
  Request rreq = irecv_track(recvbuf, count, dtype, root_world, kTagScatter,
                             g.context);
  if (g.my_rank == root) {
    std::vector<Request> sreqs;
    sreqs.reserve(static_cast<std::size_t>(g.size()));
    for (int i = 0; i < g.size(); ++i) {
      sreqs.push_back(isend_counted(op,
                                    static_cast<const std::byte*>(sendbuf) +
                                        static_cast<std::size_t>(i) * block,
                                    count, dtype,
                                    g.world[static_cast<std::size_t>(i)],
                                    kTagScatter, g.context));
    }
    for (Request& sr : sreqs) cwait(sr);
  }
  cwait(rreq);
}

}  // namespace mv2gnc::mpisim::detail
