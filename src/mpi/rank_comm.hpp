// Internal per-rank MPI engine: matching, eager protocol, rendezvous
// dispatch, and the progress loop. One RankComm per simulated process.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/rndv.hpp"
#include "core/sched.hpp"
#include "cuda/runtime.hpp"
#include "gpu/memory_registry.hpp"
#include "mpi/mpi.hpp"
#include "core/transport.hpp"
#include "sim/engine.hpp"
#include "sim/timer.hpp"
#include "sim/trace.hpp"

namespace mv2gnc::mpisim::detail {

class CollEngine;

/// Internal control-flow signal: this rank's injected crash time arrived.
/// Thrown out of the progress loop and caught by Cluster::run, which lets
/// the rank go silent (no drain, no abort wave — a crashed process sends
/// nothing). Never escapes to the application.
struct RankCrashed {};

/// Internal: coll_wait observed a COLL_ABORT wave covering the collective
/// it was waiting in. Caught by CollEngine::run_guarded.
struct CollAbortObserved {
  std::uint64_t seq = 0;  // earliest aborted collective on the context
  int origin = -1;        // world rank that started the wave
};

/// Internal: coll_wait's liveness watchdog expired — the collective made
/// no progress for the whole p2p worst-case retry budget times
/// coll_watchdog_factor. Caught by CollEngine::run_guarded.
struct CollWatchdogExpired {};

/// Membership of one communicator: comm rank i is world rank world[i].
struct CommGroup {
  int context = 0;              // matching context id
  std::vector<int> world;       // comm rank -> world rank
  int my_rank = -1;             // this process's rank within the comm

  int size() const { return static_cast<int>(world.size()); }
  /// World rank -> comm rank, or kAnySource if not a member.
  int to_comm_rank(int world_rank) const {
    for (int i = 0; i < size(); ++i) {
      if (world[i] == world_rank) return i;
    }
    return kAnySource;
  }
};

/// Optional per-operation extras threaded through isend/irecv by the
/// persistent-request and stream-triggered layers (docs/STREAMS.md).
/// Default-constructed == plain isend/irecv, bit for bit.
struct XferOpts {
  /// Prebuilt message view (a persistent request froze its argument list
  /// once): skips the MsgView::make plan lookup entirely.
  const core::MsgView* view = nullptr;
  /// Persistent plan cache slot (path decision + chunk table + cursors);
  /// must outlive the request. Null: derive fresh.
  core::RndvCache* cache = nullptr;
  /// Stream data gate for a send: the transfer's data-touching stages hold
  /// until this event fires (the RTS still leaves immediately).
  cusim::Event data_gate;
  /// Triggered when the request completes (success or failure) — resolves
  /// a stream_wait_flag enqueued behind the operation.
  std::shared_ptr<cusim::HostFlag> done_flag;
};

struct ReqState {
  std::uint64_t id = 0;
  bool complete = false;
  bool is_recv = false;
  // The transfer failed permanently (reliability layer exhausted its retry
  // budget); wait()/test() raise RequestError with `error`.
  bool failed = false;
  std::string error;
  Status status;

  // Receive-side matching criteria (world source, tag, context) and
  // destination view.
  core::MsgView view;
  int src_filter = kAnySource;
  int tag_filter = kAnyTag;
  int context = 0;

  std::shared_ptr<core::RndvSend> rndv_send;
  std::shared_ptr<core::RndvRecv> rndv_recv;

  // -- stream-triggered / persistent extras (docs/STREAMS.md) ------------
  /// Set (and later triggered) on completion — success or failure, so a
  /// gated stream can never hang on a failed transfer.
  std::shared_ptr<cusim::HostFlag> done_flag;
  /// Plan cache handed to the RndvRecv when the RTS matches (recv-side
  /// matching happens after irecv returns, so the pointer rides here).
  core::RndvCache* rndv_cache = nullptr;
};

/// A message that arrived before its receive was posted.
struct UnexpectedMsg {
  bool is_rts = false;
  int src = -1;
  int tag = 0;
  int context = 0;
  std::size_t bytes = 0;
  std::vector<std::byte> payload;   // eager payload
  std::uint64_t sender_req = 0;     // rendezvous
  std::size_t sender_chunk = 0;     // rendezvous
  const std::byte* rget_src = nullptr;  // RGET-eligible source address
};

class RankComm {
 public:
  RankComm(int rank, int size, sim::Engine& engine, cusim::CudaContext& cuda,
           core::TransportRouter& net, gpu::MemoryRegistry& registry,
           const core::Tunables& tun, sim::TraceRecorder* trace = nullptr);
  ~RankComm();
  RankComm(const RankComm&) = delete;
  RankComm& operator=(const RankComm&) = delete;

  int rank() const { return rank_; }
  int size() const { return size_; }
  ApiStats& api_stats() { return api_stats_; }
  sim::Engine& engine() { return engine_; }
  const core::Tunables& tunables() const { return *res_.tun; }
  gpu::MemoryRegistry& memory_registry() { return registry_; }
  /// This rank's simulated CUDA context (the device-buffer collectives
  /// stage copies and reduction kernels through it).
  cusim::CudaContext& cuda() { return *res_.cuda; }
  /// Transport seam (device-direct capability probe for peer legs).
  core::TransportRouter& net() { return *res_.net; }
  core::VbufPool& vbufs() { return vbuf_pool_; }
  const core::VbufPool& vbufs() const { return vbuf_pool_; }
  /// Aggregated reliability counters (retransmissions, timeouts, stalls).
  const core::RetryStats& retry_stats() const { return retry_stats_; }
  /// Concurrency-scheduler counters (QoS grants/denials, queue waits,
  /// adaptive depth moves, ack coalescing, control-message census).
  const core::SchedStats& sched_stats() const { return sched_.stats(); }
  core::TransferScheduler& sched() { return sched_; }
  /// Pool staging slots parked by failed/finished transfers; freed at
  /// destruction (they count as in_use in the pool until then), so they
  /// account exactly for any non-zero vbufs().in_use() after a quiesce.
  /// One-off pinned slots parked alongside them are not counted.
  std::size_t graveyard_slots() const {
    std::size_t n = 0;
    for (const auto& s : slot_graveyard_) {
      if (s.from_pool) ++n;
    }
    return n;
  }
  /// Wake the progress loop (deposit a notifier token). Stream host
  /// triggers use this so a rank blocked in a wait notices a data gate
  /// opening immediately instead of sleeping until its retry timer.
  void wake_progress() { notifier_.notify(); }
  /// Park a staging slot an aborted operation could not release safely (a
  /// still-queued stream copy or in-flight write may reference it); freed
  /// at destruction and counted by graveyard_slots() when pool-backed.
  void park_slot(core::detail::StagingSlot slot) {
    slot_graveyard_.push_back(std::move(slot));
  }
  /// Rendezvous receivers still held live (matched or draining). Returns to
  /// zero once every transfer is garbage-collected — the check long-running
  /// processes rely on (see docs/RELIABILITY.md).
  std::size_t tracked_rendezvous() const {
    return rts_index_.size() + draining_recvs_.size();
  }

  /// World group of this rank (context 0, identity mapping).
  const std::shared_ptr<const CommGroup>& world_group() const {
    return world_group_;
  }
  /// Allocate `count` fresh context ids starting at `base` (the caller
  /// coordinated `base` across the parent communicator).
  void reserve_contexts(int base, int count) {
    next_context_ = std::max(next_context_, base + count);
  }
  int next_context_hint() const { return next_context_; }

  // dst/src are WORLD ranks; `context` selects the communicator.
  Request isend(const void* buf, int count, const Datatype& dtype, int dst,
                int tag, int context = 0, const XferOpts& opts = {});
  Request irecv(void* buf, int count, const Datatype& dtype, int src,
                int tag, int context = 0, const XferOpts& opts = {});
  void wait(Request& req, Status* status);
  bool test(Request& req, Status* status);

  // -- stream-triggered posting (docs/STREAMS.md) ------------------------
  /// isend whose RTS fires when `stream`'s prior work drains and whose
  /// completion gates later stream work. trigger_mode=polled degrades to
  /// synchronize-then-post (the CPU-driven baseline, byte-identical to
  /// not using the stream API); trigger_mode=stream enqueues a host
  /// trigger + wait-flag pair so the host never turns the crank between
  /// compute and communication.
  Request isend_on(cusim::Stream& stream, const void* buf, int count,
                   const Datatype& dtype, int dst, int tag, int context = 0,
                   XferOpts opts = {});
  /// irecv posted immediately (matching must stay in program order) whose
  /// completion gates later work on `stream`.
  Request irecv_on(cusim::Stream& stream, void* buf, int count,
                   const Datatype& dtype, int src, int tag, int context = 0,
                   XferOpts opts = {});
  /// Trigger-graph / stream-op counters (docs/STREAMS.md).
  core::TriggerStats& trigger_stats() { return trig_stats_; }
  const core::TriggerStats& trigger_stats() const { return trig_stats_; }

  /// Abandon an in-flight request whose result is no longer wanted (the
  /// collective that owns it aborted). An unmatched posted receive is
  /// simply withdrawn; an active rendezvous is canceled at the protocol
  /// level (see RndvSend::cancel — the retraction is what keeps an
  /// abandoned send from staying "alive" forever on its peer's RTS acks,
  /// which would strand drain_pending). No-op on complete requests.
  void cancel_request(Request& req);

  /// MPI_Finalize analogue: service the progress loop until every protocol
  /// obligation quiesces — live senders/receivers, draining receivers
  /// still holding staging slots against a possible retransmitted write,
  /// and coalesced acks whose delivery window has not expired. Without
  /// this, a control message lost after the application's last wait (e.g.
  /// the SEND_DONE that lets a pooled receiver release its retained slots)
  /// strands its transfer forever: the rank's thread is gone, so the
  /// recovery timers fire into a notifier nobody waits on. Every live
  /// obligation keeps a watchdog armed, so this loop always has a future
  /// wake-up and terminates (force_drain/fail bound the lost-peer case).
  void drain_pending();

  bool iprobe(int src, int tag, Status* status, int context = 0);
  void probe(int src, int tag, Status* status, int context = 0);

  void pack(const void* inbuf, int count, const Datatype& dtype,
            void* outbuf, std::size_t outsize, std::size_t& position);
  void unpack(const void* inbuf, std::size_t insize, std::size_t& position,
              void* outbuf, int count, const Datatype& dtype);

  // Collectives run over a CommGroup (roots are comm-relative ranks).
  // All algorithm choice lives in the CollEngine (mpi/coll.hpp); these
  // forwarders keep the call surface the Communicator layer sees stable.
  void barrier(const CommGroup& g);
  void bcast(void* buf, int count, const Datatype& dtype, int root,
             const CommGroup& g);
  void allreduce_doubles(const double* sendbuf, double* recvbuf, int count,
                         bool take_max, const CommGroup& g);
  void allgather(const void* sendbuf, int count, const Datatype& dtype,
                 void* recvbuf, const CommGroup& g);
  void gather(const void* sendbuf, int count, const Datatype& dtype,
              void* recvbuf, int root, const CommGroup& g);
  void scatter(const void* sendbuf, void* recvbuf, int count,
               const Datatype& dtype, int root, const CommGroup& g);
  void alltoall(const void* sendbuf, void* recvbuf, int count,
                const Datatype& dtype, const CommGroup& g);

  /// The collectives engine (algorithm selection, topology map, per-op
  /// counters). The Cluster feeds it cost hints after construction.
  CollEngine& coll() { return *coll_; }
  const CollEngine& coll() const { return *coll_; }

  // -- process-fault injection (docs/RELIABILITY.md) ---------------------
  /// Arm a crash-stop at virtual time `t`: the next progress-loop entry at
  /// or after `t` throws RankCrashed and the rank goes silent. A timer
  /// wakes the notifier at `t` so even a blocked rank notices.
  void set_crash_time(sim::SimTime t);

  // -- collective abort protocol (driven by CollEngine) ------------------
  /// Account the start of one collective on `context`; returns its
  /// sequence number. Throws RequestError if the context is poisoned (a
  /// collective at or before this point aborted: per-step tags are reused
  /// across calls, so no later collective on the context is safe).
  std::uint64_t coll_begin(int context);
  /// wait() plus abort/liveness checks: returns normally on completion,
  /// throws RequestError on p2p transfer failure, CollAbortObserved once a
  /// COLL_ABORT wave covering `seq` is recorded, CollWatchdogExpired when
  /// virtual time passes `deadline` with the request still pending.
  void coll_wait(Request& req, Status* status, int context,
                 std::uint64_t seq, sim::SimTime deadline);
  /// Record an abort of collective `seq` on `context` (local failure or
  /// incoming wave); keeps the earliest aborted sequence.
  void coll_note_abort(int context, std::uint64_t seq, int origin);
  /// Broadcast kCollAbort to every other member of `g` (once per context)
  /// and record the abort locally.
  void coll_send_abort_wave(const CommGroup& g, std::uint64_t seq,
                            int origin);
  /// Keep an aborted collective's scratch buffers alive until the rank
  /// tears down: stale messages of the abandoned operation may still
  /// deliver into them (via still-posted receives) long after the
  /// collective call unwound.
  void park_scratch(std::vector<std::shared_ptr<void>> scratch);

 private:
  /// A stream-triggered send whose posting is deferred until the stream
  /// drains past its host-trigger op. `ready` flips in scheduler context;
  /// the posting itself runs in the progress loop (process context — it
  /// may charge submit/pack time).
  struct StreamOp {
    bool ready = false;
    bool posted = false;
    std::function<void()> post;
  };

  // One pass over all pending work; never blocks.
  void progress_once();
  /// Shared body of isend/isend_on: runs the eager or rendezvous protocol
  /// on an already-allocated request state.
  void post_isend(const std::shared_ptr<ReqState>& state, const void* buf,
                  int count, const Datatype& dtype, int dst, int tag,
                  int context, const XferOpts& opts);
  /// The single completion choke point: marks the request complete and
  /// fires its stream done-flag (on failure too — a gated stream must
  /// never hang).
  void finish_request(ReqState& s);
  // Dispatch one completion-queue entry.
  void dispatch(const netsim::Completion& c);
  void handle_eager(const netsim::WireMessage& m);
  void handle_rts(const netsim::WireMessage& m);
  // Try to match an incoming envelope against the posted-receive queue.
  std::shared_ptr<ReqState> match_posted(int src, int tag, int context);
  // Deliver a (matched) eager payload into the receive request.
  void deliver_eager(ReqState& r, int src, int tag,
                     const std::vector<std::byte>& payload);
  // Start the rendezvous receiver for a matched RTS.
  void begin_rndv_recv(const std::shared_ptr<ReqState>& r, int src, int tag,
                       std::size_t bytes, std::uint64_t sender_req,
                       std::size_t sender_chunk, const std::byte* rget_src);
  void sweep_transfers();
  // Drop a finished receiver from the live maps, keeping only the small
  // per-transfer record that keeps very late duplicates recognizable.
  void retire_recv(std::uint64_t recv_req, const core::RndvRecv& recv);
  std::uint64_t next_req_id() { return req_seq_++; }

  int rank_;
  int size_;
  sim::Engine& engine_;
  gpu::MemoryRegistry& registry_;
  core::VbufPool vbuf_pool_;
  sim::Notifier notifier_;
  core::TransferScheduler sched_;
  core::RankResources res_;

  ApiStats api_stats_;
  std::unique_ptr<CollEngine> coll_;
  std::shared_ptr<const CommGroup> world_group_;
  int next_context_ = 1;
  std::uint64_t req_seq_ = 1;
  std::deque<std::shared_ptr<ReqState>> posted_recvs_;
  std::deque<UnexpectedMsg> unexpected_;
  std::unordered_map<std::uint64_t, std::shared_ptr<ReqState>> active_sends_;
  std::unordered_map<std::uint64_t, std::shared_ptr<ReqState>> active_recvs_;

  // -- stream-triggered bookkeeping (docs/STREAMS.md) --------------------
  core::TriggerStats trig_stats_;
  /// Deferred stream-triggered posts, drained by progress_once when their
  /// host-trigger fires.
  std::vector<std::shared_ptr<StreamOp>> stream_ops_;

  // -- reliability bookkeeping -------------------------------------------
  core::RetryStats retry_stats_;
  /// Receivers whose request completed but that still owe protocol duties
  /// (waiting for SEND_DONE to release retained slots, or keeping the RGET
  /// done replayable). Keyed by recv request id.
  std::unordered_map<std::uint64_t, std::shared_ptr<core::RndvRecv>>
      draining_recvs_;
  /// Live rendezvous receivers keyed by (source node, sender request id):
  /// retransmitted RTSes are recognised here and answered with the stored
  /// CTS / done instead of spawning a second receiver. Entries are erased
  /// when the transfer is provably finished (drained), leaving only a
  /// finished_* record behind.
  std::map<std::pair<int, std::uint64_t>, std::shared_ptr<core::RndvRecv>>
      rts_index_;
  /// Garbage-collected transfers. A whole retained receiver shrinks to a
  /// few words: enough to recognise a very late duplicate RTS (key:
  /// (source node, sender request id)) ...
  std::map<std::pair<int, std::uint64_t>, std::uint64_t> finished_rts_;
  /// ... and to re-ack a retransmitted SEND_DONE whose SEND_DONE_ACK was
  /// lost after the direct-mode receiver was collected (key: recv request
  /// id, value: (source node, sender request id)).
  std::unordered_map<std::uint64_t, std::pair<int, std::uint64_t>>
      finished_recvs_;
  /// Staging slots failed/finished transfers could not release safely (an
  /// in-flight RDMA write may still read them); freed in the destructor,
  /// when the engine has drained every event.
  std::vector<core::detail::StagingSlot> slot_graveyard_;

  // -- process faults / collective abort ---------------------------------
  /// Per-context collective accounting and abort state. Sticky: once a
  /// context aborts it stays poisoned (see coll_begin).
  struct CollAbortState {
    std::uint64_t started = 0;   // collectives begun on this context
    bool aborted = false;
    std::uint64_t abort_seq = 0; // earliest aborted collective sequence
    int origin = -1;             // world rank that failed first
    bool wave_sent = false;      // this rank already broadcast the wave
  };
  std::unordered_map<int, CollAbortState> coll_abort_;
  /// Scratch buffers of aborted collectives (see park_scratch).
  std::vector<std::shared_ptr<void>> scratch_graveyard_;
  sim::SimTime crash_at_ = -1;   // injected crash-stop time (<0: never)
  sim::DeadlineTimer crash_timer_;
};

}  // namespace mv2gnc::mpisim::detail
