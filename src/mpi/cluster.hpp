// Cluster: the simulated testbed — N nodes, each with one CPU process,
// one GPU and one HCA, mirroring the paper's "one process per node, one
// GPU per process" experimental setup.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <utility>
#include <vector>

#include "core/rndv.hpp"
#include "core/sched.hpp"
#include "core/transport.hpp"
#include "core/tunables.hpp"
#include "cuda/runtime.hpp"
#include "gpu/cost_model.hpp"
#include "gpu/device.hpp"
#include "gpu/memory_registry.hpp"
#include "mpi/mpi.hpp"
#include "net/fabric.hpp"
#include "net/ipc.hpp"
#include "sim/engine.hpp"
#include "sim/trace.hpp"

namespace mv2gnc::mpisim {

namespace detail {
struct CollCostHints;
struct CollStats;
}  // namespace detail

struct ClusterConfig {
  int ranks = 2;
  gpu::GpuCostModel gpu_cost = gpu::GpuCostModel::tesla_c2050();
  netsim::NetCostModel net_cost = netsim::NetCostModel::qdr_ib();
  /// Switch topology of the fabric. The default crossbar has no shared
  /// links and is byte-identical with builds that predate the topology
  /// model; fat_tree() adds leaf/spine link contention (bench_scaleout).
  netsim::FabricTopology topology;
  core::Tunables tunables;
  /// Device DRAM per GPU (the paper's C2050 has 3 GB).
  std::size_t device_memory_bytes = 3ull << 30;
  bool trace_enabled = false;
  /// Fault-injection model copied into the fabric (benign by default).
  netsim::FaultModel faults;
  /// Fault-injection model copied into every node-local IPC channel
  /// (benign by default). Lets a chaos run make the in-node path lossy
  /// independently of — or together with — the fabric.
  netsim::FaultModel ipc_faults;
  /// Crash-stop injection: each (rank, time) entry makes that rank vanish
  /// at the given virtual time — it stops making progress mid-transfer,
  /// sends nothing further (not even an abort), and is not drained at
  /// finalize. Surviving ranks must resolve via their own retry budgets
  /// and the collective abort protocol (docs/RELIABILITY.md).
  std::vector<std::pair<int, sim::SimTime>> crash_at;
  /// Seed of the engine's deterministic RNG (fault rolls, jitter draws).
  /// Same seed + same workload = same schedule, faults included.
  std::uint64_t rng_seed = 1;
};

/// Per-rank view handed to the application body.
struct Context {
  int rank = -1;
  int size = 0;
  Communicator comm;
  cusim::CudaContext* cuda = nullptr;
  sim::Engine* engine = nullptr;
  sim::TraceRecorder* trace = nullptr;
  const core::Tunables* tunables = nullptr;

  /// Virtual seconds since simulation start.
  double wtime() const { return sim::to_sec(engine->now()); }
  /// Virtual time now (nanoseconds).
  sim::SimTime now() const { return engine->now(); }
};

/// Aggregate per-rank utilisation counters (observability; see
/// Cluster::print_stats).
struct RankStats {
  std::uint64_t messages_sent = 0;   // two-sided control/eager messages
  std::uint64_t rdma_writes = 0;
  std::uint64_t bytes_sent = 0;      // payload bytes leaving the NIC
  sim::SimTime nic_busy = 0;         // transmit-pipeline busy time
  std::size_t vbuf_high_water = 0;   // peak staging buffers in use
  sim::SimTime d2h_busy = 0;         // per-engine busy time
  sim::SimTime h2d_busy = 0;
  sim::SimTime d2d_busy = 0;
  sim::SimTime kernel_busy = 0;

  // -- reliability (all zero on a fault-free fabric) ---------------------
  std::uint64_t retransmits = 0;       // control/chunk resends, all kinds
  std::uint64_t timeouts = 0;          // retransmission deadline expiries
  std::uint64_t stall_fallbacks = 0;   // vbuf-starvation watchdog firings
  std::uint64_t transfer_failures = 0; // transfers failed after max retries
  std::uint64_t faults_injected = 0;   // drops/jitters/write-fails at the NIC

  // -- intra-node IPC transport (all zero unless the topology co-locates
  //    this rank with a peer and transport_select is kAuto) ---------------
  std::uint64_t ipc_messages_sent = 0;  // control messages over the channel
  std::uint64_t ipc_copies = 0;         // one-sided peer copies (wr + rd)
  std::uint64_t ipc_bytes_sent = 0;     // bytes moved without touching the HCA
  sim::SimTime ipc_busy = 0;            // channel transmit-pipeline busy time
  std::uint64_t ipc_faults_injected = 0;  // drops/jitters/fails at the channel

  // -- concurrency scheduler (see core::SchedStats for field docs) -------
  core::SchedStats sched;
};

/// Owns the engine, devices, fabric and per-rank MPI state; runs an SPMD
/// body across all ranks on the virtual clock.
class Cluster {
 public:
  explicit Cluster(ClusterConfig config = {});
  ~Cluster();
  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  /// Run `body` once per rank (like mpirun). Blocks until every rank
  /// returns; rethrows the first exception a rank throws. One-shot.
  void run(std::function<void(Context&)> body);

  sim::Engine& engine() { return engine_; }
  sim::TraceRecorder& trace() { return trace_; }
  const ClusterConfig& config() const { return config_; }
  gpu::Device& device(int rank);
  netsim::Endpoint& endpoint(int rank);
  /// Node a rank lives on (blocked placement: rank / ranks_per_node).
  int node_of(int rank) const;
  /// The rank's per-peer wire-path router (fabric + optional IPC).
  core::TransportRouter& router(int rank);
  /// Live fault model of the fabric (mutable between runs of one Cluster).
  netsim::FaultModel& faults();
  /// Per-shared-link counters of the fabric (empty on the crossbar): the
  /// same snapshot print_stats renders as the busiest-links table, exposed
  /// raw so tests and benches can assert on routing spread and ECN marks.
  std::vector<netsim::LinkStats> link_stats() const;
  /// The node-local IPC channel serving a rank, or nullptr when the
  /// topology gives it none. Exposes the channel's live FaultModel and
  /// per-port FaultCounters to chaos harnesses.
  netsim::IpcChannel* ipc_channel(int rank);
  /// Injected-fault counters of one rank, split by wire path.
  struct FaultStats {
    netsim::FaultCounters fabric;  // this rank's HCA (Endpoint)
    netsim::FaultCounters ipc;     // this rank's IPC port (if any)
  };
  FaultStats fault_stats(int rank);
  /// Detailed per-rank reliability counters (valid after run()).
  const core::RetryStats& retry_stats(int rank) const;
  /// Rendezvous receivers a rank still tracks (valid after run()). Zero
  /// once every transfer has been garbage-collected down to its
  /// finished-transfer record.
  std::size_t tracked_rendezvous(int rank) const;
  /// Concurrency-scheduler counters of one rank (valid after run()).
  const core::SchedStats& sched_stats(int rank) const;
  /// Trigger-graph / stream-rendezvous / persistent-plan counters of one
  /// rank (valid after run(); docs/STREAMS.md).
  const core::TriggerStats& trigger_stats(int rank) const;
  /// Per-collective counters of one rank (calls, two-level calls, bytes,
  /// intra/leader phases; valid after run()).
  const detail::CollStats& coll_stats(int rank) const;
  /// Cost facts the rank's coll_select = auto consults (derived from the
  /// fabric and IPC cost models at construction).
  const detail::CollCostHints& coll_cost_hints(int rank) const;
  /// VbufPool::audit() of one rank: "" when the pool accounting is
  /// consistent, else a description of the first violation.
  std::string vbuf_audit(int rank) const;
  /// Staging buffers currently checked out of one rank's pool.
  std::size_t vbufs_in_use(int rank) const;
  /// Pool slots parked by failed/finished transfers, freed only at
  /// teardown; they account exactly for any non-zero vbufs_in_use after a
  /// quiesce (pinned one-off parks are excluded).
  std::size_t graveyard_slots(int rank) const;

  /// Virtual time at which the last run() finished.
  sim::SimTime elapsed() const { return engine_.now(); }

  /// Utilisation counters for one rank (valid after run()).
  RankStats rank_stats(int rank);
  /// Counters of the process-wide datatype pack-plan cache.
  static core::PlanCacheStats plan_cache_stats();
  /// Render a per-rank utilisation table.
  void print_stats(std::ostream& os);

 private:
  ClusterConfig config_;
  sim::Engine engine_;
  sim::TraceRecorder trace_;
  gpu::MemoryRegistry registry_;
  std::unique_ptr<netsim::Fabric> fabric_;
  // One IPC channel per node that hosts >= 2 ranks (empty in the default
  // one-process-per-node topology), plus each rank's transport bindings.
  std::vector<std::unique_ptr<netsim::IpcChannel>> ipc_channels_;
  std::vector<std::unique_ptr<core::FabricTransport>> fabric_transports_;
  std::vector<std::unique_ptr<core::IpcTransport>> ipc_transports_;
  std::vector<std::unique_ptr<core::TransportRouter>> routers_;
  std::vector<std::unique_ptr<gpu::Device>> devices_;
  std::vector<std::unique_ptr<cusim::CudaContext>> cuda_;
  std::vector<std::unique_ptr<detail::RankComm>> comms_;
  bool ran_ = false;
};

}  // namespace mv2gnc::mpisim
