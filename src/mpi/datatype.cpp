#include "mpi/datatype.hpp"

#include <algorithm>
#include <cstring>
#include <numeric>
#include <sstream>
#include <stdexcept>

namespace mv2gnc::mpisim {

namespace detail {

enum class Kind {
  kPredefined,
  kContiguous,
  kVector,   // stride normalized to bytes
  kIndexed,  // displacements normalized to bytes
  kStruct,
  kSubarray,
  kResized,
};

struct TypeNode {
  Kind kind = Kind::kPredefined;
  std::string name;

  // Type map summary (computed at construction).
  std::size_t size = 0;
  std::int64_t lb = 0;
  std::int64_t ub = 0;

  // Constructor parameters (meaning depends on kind).
  int count = 0;
  int blocklength = 0;
  std::int64_t stride_bytes = 0;
  std::vector<int> blocklengths;
  std::vector<std::int64_t> displacements;  // bytes
  std::vector<std::shared_ptr<TypeNode>> children;

  // Subarray parameters.
  std::vector<int> sizes;
  std::vector<int> subsizes;
  std::vector<int> starts;
  ArrayOrder order = ArrayOrder::kC;

  // Commit artifacts.
  bool committed = false;
  std::vector<Segment> segments;
  std::vector<std::size_t> packed_prefix;  // nsegs + 1 entries

  // Memoized flattened-layout facts, computed once in commit() so the
  // per-send queries (total_segments, vector_pattern, is_contiguous) are
  // O(1) instead of O(nsegs) scans.
  bool seam_merges = false;     // last run of elem k abuts first of k+1
  bool uniform_len = false;     // every run has the same length
  bool uniform_stride = false;  // equal gap between consecutive runs
  std::int64_t intra_stride = 0;
  bool seam_stride_ok = false;  // inter-element seam equals intra_stride
  // Contiguity memo for pre-commit queries: -1 unknown, else 0/1.
  mutable int contig_memo = -1;

  std::int64_t extent() const { return ub - lb; }
};

namespace {

void emit_segments(const TypeNode& n, std::int64_t base,
                   std::vector<Segment>& out);

void append_merged(std::vector<Segment>& out, std::int64_t offset,
                   std::size_t length) {
  if (length == 0) return;
  if (!out.empty() &&
      out.back().offset + static_cast<std::int64_t>(out.back().length) ==
          offset) {
    out.back().length += length;
    return;
  }
  out.push_back(Segment{offset, length});
}

void emit_child_block(const TypeNode& child, std::int64_t base, int blocklen,
                      std::vector<Segment>& out) {
  const std::int64_t ext = child.extent();
  for (int j = 0; j < blocklen; ++j) {
    emit_segments(child, base + static_cast<std::int64_t>(j) * ext, out);
  }
}

void emit_subarray_dim(const TypeNode& n, std::size_t depth, std::int64_t base,
                       const std::vector<std::int64_t>& dim_stride,
                       std::vector<Segment>& out) {
  const auto ndims = n.sizes.size();
  if (depth == ndims) {
    emit_segments(*n.children[0], base, out);
    return;
  }
  // The type-map order varies the fastest-moving dimension innermost:
  // the last dimension for C order, the first for Fortran order.
  const std::size_t dim =
      (n.order == ArrayOrder::kC) ? depth : ndims - 1 - depth;
  for (int i = 0; i < n.subsizes[dim]; ++i) {
    emit_subarray_dim(
        n, depth + 1,
        base + (n.starts[dim] + i) * dim_stride[dim], dim_stride, out);
  }
}

void emit_segments(const TypeNode& n, std::int64_t base,
                   std::vector<Segment>& out) {
  switch (n.kind) {
    case Kind::kPredefined:
      append_merged(out, base, n.size);
      return;
    case Kind::kContiguous:
      emit_child_block(*n.children[0], base, n.count, out);
      return;
    case Kind::kVector:
      for (int i = 0; i < n.count; ++i) {
        emit_child_block(*n.children[0],
                         base + static_cast<std::int64_t>(i) * n.stride_bytes,
                         n.blocklength, out);
      }
      return;
    case Kind::kIndexed:
      for (std::size_t k = 0; k < n.blocklengths.size(); ++k) {
        emit_child_block(*n.children[0], base + n.displacements[k],
                         n.blocklengths[k], out);
      }
      return;
    case Kind::kStruct:
      for (std::size_t k = 0; k < n.children.size(); ++k) {
        emit_child_block(*n.children[k], base + n.displacements[k],
                         n.blocklengths[k], out);
      }
      return;
    case Kind::kSubarray: {
      // dim_stride[d] = bytes between consecutive indices along dim d.
      const auto ndims = n.sizes.size();
      std::vector<std::int64_t> dim_stride(ndims);
      const std::int64_t elem = n.children[0]->extent();
      if (n.order == ArrayOrder::kC) {
        std::int64_t s = elem;
        for (std::size_t d = ndims; d-- > 0;) {
          dim_stride[d] = s;
          s *= n.sizes[d];
        }
      } else {
        std::int64_t s = elem;
        for (std::size_t d = 0; d < ndims; ++d) {
          dim_stride[d] = s;
          s *= n.sizes[d];
        }
      }
      emit_subarray_dim(n, 0, base, dim_stride, out);
      return;
    }
    case Kind::kResized:
      emit_segments(*n.children[0], base, out);
      return;
  }
}

// Upper bound on the number of flattened runs (before merging), used to
// reserve() the segment vector ahead of emission. Saturates at `cap`.
std::size_t run_upper_bound(const TypeNode& n, std::size_t cap) {
  const auto mul = [cap](std::size_t a, std::size_t b) {
    if (a == 0 || b == 0) return std::size_t{0};
    return (a > cap / b) ? cap : a * b;
  };
  switch (n.kind) {
    case Kind::kPredefined:
      return 1;
    case Kind::kContiguous:
      return mul(static_cast<std::size_t>(n.count),
                 run_upper_bound(*n.children[0], cap));
    case Kind::kVector:
      return mul(mul(static_cast<std::size_t>(n.count),
                     static_cast<std::size_t>(n.blocklength)),
                 run_upper_bound(*n.children[0], cap));
    case Kind::kIndexed: {
      std::size_t blocks = 0;
      for (int b : n.blocklengths) {
        blocks += static_cast<std::size_t>(b);
        if (blocks >= cap) return cap;
      }
      return mul(blocks, run_upper_bound(*n.children[0], cap));
    }
    case Kind::kStruct: {
      std::size_t total = 0;
      for (std::size_t k = 0; k < n.children.size(); ++k) {
        total += mul(static_cast<std::size_t>(n.blocklengths[k]),
                     run_upper_bound(*n.children[k], cap));
        if (total >= cap) return cap;
      }
      return total;
    }
    case Kind::kSubarray: {
      std::size_t points = 1;
      for (int s : n.subsizes) points = mul(points, static_cast<std::size_t>(s));
      return mul(points, run_upper_bound(*n.children[0], cap));
    }
    case Kind::kResized:
      return run_upper_bound(*n.children[0], cap);
  }
  return cap;
}

std::shared_ptr<TypeNode> predefined(const char* name, std::size_t size) {
  auto n = std::make_shared<TypeNode>();
  n->kind = Kind::kPredefined;
  n->name = name;
  n->size = size;
  n->lb = 0;
  n->ub = static_cast<std::int64_t>(size);
  return n;
}

void require(bool ok, const char* what) {
  if (!ok) throw std::invalid_argument(what);
}

}  // namespace
}  // namespace detail

using detail::Kind;
using detail::TypeNode;

const TypeNode& Datatype::node() const {
  if (!node_) throw std::logic_error("null Datatype handle used");
  return *node_;
}

// ---------------------------------------------------------------------------
// Predefined types (one shared node per process, like MPI handles).
// ---------------------------------------------------------------------------

Datatype Datatype::byte() {
  static auto n = detail::predefined("MPI_BYTE", 1);
  return Datatype(n);
}
Datatype Datatype::int32() {
  static auto n = detail::predefined("MPI_INT", 4);
  return Datatype(n);
}
Datatype Datatype::int64() {
  static auto n = detail::predefined("MPI_LONG_LONG", 8);
  return Datatype(n);
}
Datatype Datatype::float32() {
  static auto n = detail::predefined("MPI_FLOAT", 4);
  return Datatype(n);
}
Datatype Datatype::float64() {
  static auto n = detail::predefined("MPI_DOUBLE", 8);
  return Datatype(n);
}

// ---------------------------------------------------------------------------
// Constructors
// ---------------------------------------------------------------------------

namespace {

void span_bounds(const TypeNode& child, std::int64_t block_base, int blocklen,
                 std::int64_t& lo, std::int64_t& hi) {
  // Bounds contributed by `blocklen` consecutive child elements at
  // block_base.
  const std::int64_t ext = child.extent();
  const std::int64_t first_lb = block_base + child.lb;
  const std::int64_t last_ub =
      block_base + static_cast<std::int64_t>(blocklen - 1) * ext + child.ub;
  lo = std::min(lo, std::min(first_lb, last_ub));
  hi = std::max(hi, std::max(first_lb, last_ub));
}

}  // namespace

Datatype Datatype::contiguous(int count, const Datatype& old) {
  detail::require(count >= 0, "contiguous: negative count");
  if (!old.valid()) throw std::invalid_argument("contiguous: null base type");
  auto n = std::make_shared<TypeNode>();
  n->kind = Kind::kContiguous;
  n->count = count;
  n->children.push_back(old.node_);
  const TypeNode& c = *old.node_;
  n->size = static_cast<std::size_t>(count) * c.size;
  if (count == 0) {
    n->lb = 0;
    n->ub = 0;
  } else {
    std::int64_t lo = INT64_MAX, hi = INT64_MIN;
    span_bounds(c, 0, count, lo, hi);
    n->lb = lo;
    n->ub = hi;
  }
  return Datatype(std::move(n));
}

Datatype Datatype::vector(int count, int blocklength, int stride,
                          const Datatype& old) {
  if (!old.valid()) throw std::invalid_argument("vector: null base type");
  return hvector(count, blocklength,
                 static_cast<std::int64_t>(stride) * old.node_->extent(), old);
}

Datatype Datatype::hvector(int count, int blocklength,
                           std::int64_t stride_bytes, const Datatype& old) {
  detail::require(count >= 0, "hvector: negative count");
  detail::require(blocklength >= 0, "hvector: negative blocklength");
  if (!old.valid()) throw std::invalid_argument("hvector: null base type");
  auto n = std::make_shared<TypeNode>();
  n->kind = Kind::kVector;
  n->count = count;
  n->blocklength = blocklength;
  n->stride_bytes = stride_bytes;
  n->children.push_back(old.node_);
  const TypeNode& c = *old.node_;
  n->size = static_cast<std::size_t>(count) *
            static_cast<std::size_t>(blocklength) * c.size;
  if (count == 0 || blocklength == 0) {
    n->lb = 0;
    n->ub = 0;
  } else {
    std::int64_t lo = INT64_MAX, hi = INT64_MIN;
    for (int i = 0; i < count; ++i) {
      span_bounds(c, static_cast<std::int64_t>(i) * stride_bytes, blocklength,
                  lo, hi);
    }
    n->lb = lo;
    n->ub = hi;
  }
  return Datatype(std::move(n));
}

Datatype Datatype::indexed(std::span<const int> blocklengths,
                           std::span<const int> displacements,
                           const Datatype& old) {
  if (!old.valid()) throw std::invalid_argument("indexed: null base type");
  detail::require(blocklengths.size() == displacements.size(),
                  "indexed: blocklengths/displacements size mismatch");
  std::vector<std::int64_t> displs_bytes(displacements.size());
  const std::int64_t ext = old.node_->extent();
  for (std::size_t i = 0; i < displacements.size(); ++i) {
    displs_bytes[i] = static_cast<std::int64_t>(displacements[i]) * ext;
  }
  return hindexed(blocklengths, displs_bytes, old);
}

Datatype Datatype::hindexed(std::span<const int> blocklengths,
                            std::span<const std::int64_t> displacements_bytes,
                            const Datatype& old) {
  if (!old.valid()) throw std::invalid_argument("hindexed: null base type");
  detail::require(blocklengths.size() == displacements_bytes.size(),
                  "hindexed: blocklengths/displacements size mismatch");
  auto n = std::make_shared<TypeNode>();
  n->kind = Kind::kIndexed;
  n->blocklengths.assign(blocklengths.begin(), blocklengths.end());
  n->displacements.assign(displacements_bytes.begin(),
                          displacements_bytes.end());
  n->children.push_back(old.node_);
  const TypeNode& c = *old.node_;
  std::size_t size = 0;
  std::int64_t lo = INT64_MAX, hi = INT64_MIN;
  bool any = false;
  for (std::size_t k = 0; k < n->blocklengths.size(); ++k) {
    detail::require(n->blocklengths[k] >= 0, "hindexed: negative blocklength");
    size += static_cast<std::size_t>(n->blocklengths[k]) * c.size;
    if (n->blocklengths[k] > 0) {
      any = true;
      span_bounds(c, n->displacements[k], n->blocklengths[k], lo, hi);
    }
  }
  n->size = size;
  n->lb = any ? lo : 0;
  n->ub = any ? hi : 0;
  return Datatype(std::move(n));
}

Datatype Datatype::indexed_block(int blocklength,
                                 std::span<const int> displacements,
                                 const Datatype& old) {
  std::vector<int> blocklens(displacements.size(), blocklength);
  return indexed(blocklens, displacements, old);
}

Datatype Datatype::create_struct(std::span<const int> blocklengths,
                                 std::span<const std::int64_t> displacements,
                                 std::span<const Datatype> types) {
  detail::require(blocklengths.size() == displacements.size() &&
                      blocklengths.size() == types.size(),
                  "create_struct: argument size mismatch");
  auto n = std::make_shared<TypeNode>();
  n->kind = Kind::kStruct;
  n->blocklengths.assign(blocklengths.begin(), blocklengths.end());
  n->displacements.assign(displacements.begin(), displacements.end());
  std::size_t size = 0;
  std::int64_t lo = INT64_MAX, hi = INT64_MIN;
  bool any = false;
  for (std::size_t k = 0; k < types.size(); ++k) {
    if (!types[k].valid()) {
      throw std::invalid_argument("create_struct: null member type");
    }
    detail::require(blocklengths[k] >= 0,
                    "create_struct: negative blocklength");
    n->children.push_back(types[k].node_);
    const TypeNode& c = *types[k].node_;
    size += static_cast<std::size_t>(blocklengths[k]) * c.size;
    if (blocklengths[k] > 0) {
      any = true;
      span_bounds(c, displacements[k], blocklengths[k], lo, hi);
    }
  }
  n->size = size;
  n->lb = any ? lo : 0;
  n->ub = any ? hi : 0;
  return Datatype(std::move(n));
}

Datatype Datatype::subarray(std::span<const int> sizes,
                            std::span<const int> subsizes,
                            std::span<const int> starts, ArrayOrder order,
                            const Datatype& old) {
  if (!old.valid()) throw std::invalid_argument("subarray: null base type");
  const std::size_t ndims = sizes.size();
  detail::require(ndims > 0, "subarray: zero dimensions");
  detail::require(subsizes.size() == ndims && starts.size() == ndims,
                  "subarray: dimension count mismatch");
  for (std::size_t d = 0; d < ndims; ++d) {
    detail::require(sizes[d] > 0, "subarray: non-positive size");
    detail::require(subsizes[d] > 0 && subsizes[d] <= sizes[d],
                    "subarray: bad subsize");
    detail::require(starts[d] >= 0 && starts[d] + subsizes[d] <= sizes[d],
                    "subarray: bad start");
  }
  auto n = std::make_shared<TypeNode>();
  n->kind = Kind::kSubarray;
  n->sizes.assign(sizes.begin(), sizes.end());
  n->subsizes.assign(subsizes.begin(), subsizes.end());
  n->starts.assign(starts.begin(), starts.end());
  n->order = order;
  n->children.push_back(old.node_);
  const TypeNode& c = *old.node_;
  std::size_t points = 1;
  std::int64_t full = 1;
  for (std::size_t d = 0; d < ndims; ++d) {
    points *= static_cast<std::size_t>(subsizes[d]);
    full *= sizes[d];
  }
  n->size = points * c.size;
  // MPI: the extent of a subarray type is the extent of the full array.
  n->lb = 0;
  n->ub = full * c.extent();
  return Datatype(std::move(n));
}

Datatype Datatype::resized(const Datatype& old, std::int64_t lb,
                           std::int64_t extent) {
  if (!old.valid()) throw std::invalid_argument("resized: null base type");
  auto n = std::make_shared<TypeNode>();
  n->kind = Kind::kResized;
  n->children.push_back(old.node_);
  n->size = old.node_->size;
  n->lb = lb;
  n->ub = lb + extent;
  return Datatype(std::move(n));
}

// ---------------------------------------------------------------------------
// Queries
// ---------------------------------------------------------------------------

std::size_t Datatype::size() const { return node().size; }
std::int64_t Datatype::extent() const { return node().extent(); }
std::int64_t Datatype::lower_bound() const { return node().lb; }

bool Datatype::is_contiguous() const {
  const TypeNode& n = node();
  if (n.size == 0) return true;
  if (n.contig_memo < 0) {
    // First query on an uncommitted tree: flatten once and memoize (the
    // tree is immutable, so the answer never changes; commit() reuses it).
    std::vector<Segment> segs;
    detail::emit_segments(n, 0, segs);
    n.contig_memo =
        (segs.size() == 1 && segs[0].offset == 0 && segs[0].length == n.size &&
         static_cast<std::int64_t>(n.size) == n.extent())
            ? 1
            : 0;
  }
  return n.contig_memo == 1;
}

std::string Datatype::describe() const {
  const TypeNode& n = node();
  std::ostringstream os;
  switch (n.kind) {
    case Kind::kPredefined: os << n.name; break;
    case Kind::kContiguous:
      os << "contiguous(" << n.count << ", "
         << Datatype(n.children[0]).describe() << ")";
      break;
    case Kind::kVector:
      os << "hvector(count=" << n.count << ", blocklen=" << n.blocklength
         << ", stride=" << n.stride_bytes << "B, "
         << Datatype(n.children[0]).describe() << ")";
      break;
    case Kind::kIndexed:
      os << "hindexed(" << n.blocklengths.size() << " blocks, "
         << Datatype(n.children[0]).describe() << ")";
      break;
    case Kind::kStruct:
      os << "struct(" << n.children.size() << " members)";
      break;
    case Kind::kSubarray: {
      os << "subarray([";
      for (std::size_t d = 0; d < n.sizes.size(); ++d) {
        os << (d ? "," : "") << n.subsizes[d] << "/" << n.sizes[d];
      }
      os << "], " << Datatype(n.children[0]).describe() << ")";
      break;
    }
    case Kind::kResized:
      os << "resized(lb=" << n.lb << ", extent=" << n.extent() << ", "
         << Datatype(n.children[0]).describe() << ")";
      break;
  }
  return os.str();
}

// ---------------------------------------------------------------------------
// Commit & flattened access
// ---------------------------------------------------------------------------

void Datatype::commit() {
  TypeNode& n = const_cast<TypeNode&>(node());
  if (n.committed) return;
  n.segments.clear();
  // Pre-size from the run count known at construction (merging can only
  // shrink it); the cap bounds memory for pathological trees.
  constexpr std::size_t kReserveCap = std::size_t{1} << 22;
  n.segments.reserve(detail::run_upper_bound(n, kReserveCap));
  detail::emit_segments(n, 0, n.segments);
  n.packed_prefix.resize(n.segments.size() + 1);
  n.packed_prefix[0] = 0;
  for (std::size_t i = 0; i < n.segments.size(); ++i) {
    n.packed_prefix[i + 1] = n.packed_prefix[i] + n.segments[i].length;
  }
  if (n.packed_prefix.back() != n.size) {
    throw std::logic_error("datatype commit: segment sum != size");
  }
  // Memoize the layout facts every send-path query needs.
  const auto& segs = n.segments;
  if (!segs.empty()) {
    n.seam_merges =
        segs.back().offset + static_cast<std::int64_t>(segs.back().length) ==
        segs.front().offset + n.extent();
    n.uniform_len = true;
    for (const Segment& s : segs) {
      if (s.length != segs[0].length) {
        n.uniform_len = false;
        break;
      }
    }
    n.uniform_stride = true;
    n.intra_stride = segs.size() > 1 ? segs[1].offset - segs[0].offset : 0;
    for (std::size_t i = 1; i < segs.size(); ++i) {
      if (segs[i].offset - segs[i - 1].offset != n.intra_stride) {
        n.uniform_stride = false;
        break;
      }
    }
    const std::int64_t seam =
        (segs[0].offset + n.extent()) - segs.back().offset;
    n.seam_stride_ok = (seam == n.intra_stride);
  }
  n.contig_memo =
      (n.size == 0 ||
       (segs.size() == 1 && segs[0].offset == 0 && segs[0].length == n.size &&
        static_cast<std::int64_t>(n.size) == n.extent()))
          ? 1
          : 0;
  n.committed = true;
}

bool Datatype::committed() const { return node().committed; }

namespace {

const TypeNode& committed_node(const Datatype& t, const TypeNode& n,
                               const char* api) {
  if (!n.committed) {
    throw std::logic_error(std::string(api) +
                           ": datatype not committed: " + t.describe());
  }
  return n;
}

}  // namespace

const std::vector<Segment>& Datatype::segments() const {
  return committed_node(*this, node(), "segments").segments;
}

std::size_t Datatype::total_segments(int count) const {
  const TypeNode& n = committed_node(*this, node(), "total_segments");
  if (count <= 0 || n.segments.empty()) return 0;
  // Elements may merge at the seam if the last segment of element k abuts
  // the first segment of element k+1 (memoized at commit).
  const std::size_t per = n.segments.size();
  if (n.seam_merges) {
    return per * static_cast<std::size_t>(count) -
           static_cast<std::size_t>(count - 1);
  }
  return per * static_cast<std::size_t>(count);
}

std::optional<VectorPattern> Datatype::vector_pattern(int count) const {
  const TypeNode& n = committed_node(*this, node(), "vector_pattern");
  if (count <= 0 || n.segments.empty() || n.size == 0) return std::nullopt;
  // All facts memoized at commit: this is O(1) on the send path.
  const auto& segs = n.segments;
  const std::size_t len = segs[0].length;
  if (!n.uniform_len) return std::nullopt;
  if (segs.size() > 1 && !n.uniform_stride) return std::nullopt;
  if (count == 1) {
    if (segs.size() == 1) {
      return VectorPattern{1, len, static_cast<std::int64_t>(len)};
    }
    return VectorPattern{segs.size(), len, n.intra_stride};
  }
  if (segs.size() == 1) {
    // Single block per element: the seam becomes the stride.
    return VectorPattern{static_cast<std::size_t>(count), len, n.extent()};
  }
  // Across elements the seam stride must equal the intra-element stride.
  if (!n.seam_stride_ok) return std::nullopt;
  return VectorPattern{segs.size() * static_cast<std::size_t>(count), len,
                       n.intra_stride};
}

// ---------------------------------------------------------------------------
// Pack / unpack
// ---------------------------------------------------------------------------

namespace {

// Shared gather/scatter driver. `kPack` copies typed -> dense, `kUnpack`
// dense -> typed.
enum class XferDir { kPack, kUnpack };

void move_full(const TypeNode& n, XferDir dir, const void* typed_in,
               void* typed_out, const void* dense_in, void* dense_out,
               int count) {
  const std::int64_t ext = n.extent();
  std::size_t dense_pos = 0;
  for (int e = 0; e < count; ++e) {
    const std::int64_t elem_base = static_cast<std::int64_t>(e) * ext;
    for (const Segment& s : n.segments) {
      if (dir == XferDir::kPack) {
        std::memcpy(static_cast<std::byte*>(dense_out) + dense_pos,
                    static_cast<const std::byte*>(typed_in) + elem_base +
                        s.offset,
                    s.length);
      } else {
        std::memcpy(
            static_cast<std::byte*>(typed_out) + elem_base + s.offset,
            static_cast<const std::byte*>(dense_in) + dense_pos, s.length);
      }
      dense_pos += s.length;
    }
  }
}

// Locate packed-stream offset `pack_offset` (the one search of the ranged
// pack path; everything downstream advances the cursor without searching).
PackCursor cursor_for(const TypeNode& n, std::size_t pack_offset) {
  PackCursor cur;
  if (n.size == 0) return cur;
  cur.elem = pack_offset / n.size;
  const std::size_t within = pack_offset % n.size;
  const auto it = std::upper_bound(n.packed_prefix.begin(),
                                   n.packed_prefix.end(), within);
  cur.seg = static_cast<std::size_t>(
                std::distance(n.packed_prefix.begin(), it)) -
            1;
  cur.skip = within - n.packed_prefix[cur.seg];
  return cur;
}

// Gather/scatter `nbytes` starting at `cur`. O(segments in range), zero
// searches: after the first segment the cursor simply walks forward (each
// subsequent element starts at segment 0 with no skip).
void move_from_cursor(const TypeNode& n, XferDir dir, const void* typed_in,
                      void* typed_out, const void* dense_in, void* dense_out,
                      PackCursor cur, std::size_t nbytes) {
  const std::int64_t ext = n.extent();
  std::size_t remaining = nbytes;
  std::size_t dense_pos = 0;  // position within the output slice
  std::size_t e = cur.elem;
  std::size_t si = cur.seg;
  std::size_t skip = cur.skip;
  while (remaining > 0) {
    const std::int64_t elem_base = static_cast<std::int64_t>(e) * ext;
    while (remaining > 0 && si < n.segments.size()) {
      const Segment& s = n.segments[si];
      const std::size_t avail = s.length - skip;
      const std::size_t take = std::min(avail, remaining);
      if (dir == XferDir::kPack) {
        std::memcpy(static_cast<std::byte*>(dense_out) + dense_pos,
                    static_cast<const std::byte*>(typed_in) + elem_base +
                        s.offset + static_cast<std::int64_t>(skip),
                    take);
      } else {
        std::memcpy(static_cast<std::byte*>(typed_out) + elem_base +
                        s.offset + static_cast<std::int64_t>(skip),
                    static_cast<const std::byte*>(dense_in) + dense_pos,
                    take);
      }
      dense_pos += take;
      remaining -= take;
      skip += take;
      if (skip == s.length) {
        ++si;
        skip = 0;
      }
    }
    // Element exhausted; move to the next.
    if (si >= n.segments.size()) {
      ++e;
      si = 0;
      skip = 0;
    }
  }
}

void check_range(const TypeNode& n, int count, std::size_t pack_offset,
                 std::size_t nbytes) {
  const std::size_t total = n.size * static_cast<std::size_t>(count);
  if (pack_offset > total || nbytes > total - pack_offset) {
    throw std::out_of_range("pack/unpack byte range outside message");
  }
}

void move_bytes(const TypeNode& n, XferDir dir, const void* typed_in,
                void* typed_out, const void* dense_in, void* dense_out,
                int count, std::size_t pack_offset, std::size_t nbytes) {
  check_range(n, count, pack_offset, nbytes);
  move_from_cursor(n, dir, typed_in, typed_out, dense_in, dense_out,
                   cursor_for(n, pack_offset), nbytes);
}

}  // namespace

void Datatype::pack(const void* src, int count, void* dst) const {
  const TypeNode& n = committed_node(*this, node(), "pack");
  move_full(n, XferDir::kPack, src, nullptr, nullptr, dst, count);
}

void Datatype::unpack(const void* src, int count, void* dst) const {
  const TypeNode& n = committed_node(*this, node(), "unpack");
  move_full(n, XferDir::kUnpack, nullptr, dst, src, nullptr, count);
}

void Datatype::pack_bytes(const void* src, int count, std::size_t pack_offset,
                          std::size_t nbytes, void* dst) const {
  const TypeNode& n = committed_node(*this, node(), "pack_bytes");
  move_bytes(n, XferDir::kPack, src, nullptr, nullptr, dst, count, pack_offset,
             nbytes);
}

void Datatype::unpack_bytes(const void* src, int count,
                            std::size_t pack_offset, std::size_t nbytes,
                            void* dst) const {
  const TypeNode& n = committed_node(*this, node(), "unpack_bytes");
  move_bytes(n, XferDir::kUnpack, nullptr, dst, src, nullptr, count,
             pack_offset, nbytes);
}

PackCursor Datatype::cursor_at(int count, std::size_t pack_offset) const {
  const TypeNode& n = committed_node(*this, node(), "cursor_at");
  check_range(n, count, pack_offset, 0);
  return cursor_for(n, pack_offset);
}

void Datatype::pack_bytes_from(const PackCursor& cur, const void* src,
                               int count, std::size_t nbytes,
                               void* dst) const {
  const TypeNode& n = committed_node(*this, node(), "pack_bytes_from");
  if (n.size == 0 && nbytes == 0) return;
  check_range(n, count,
              cur.elem * n.size +
                  (cur.seg < n.packed_prefix.size() ? n.packed_prefix[cur.seg]
                                                    : 0) +
                  cur.skip,
              nbytes);
  move_from_cursor(n, XferDir::kPack, src, nullptr, nullptr, dst, cur, nbytes);
}

void Datatype::unpack_bytes_from(const PackCursor& cur, const void* src,
                                 int count, std::size_t nbytes,
                                 void* dst) const {
  const TypeNode& n = committed_node(*this, node(), "unpack_bytes_from");
  if (n.size == 0 && nbytes == 0) return;
  check_range(n, count,
              cur.elem * n.size +
                  (cur.seg < n.packed_prefix.size() ? n.packed_prefix[cur.seg]
                                                    : 0) +
                  cur.skip,
              nbytes);
  move_from_cursor(n, XferDir::kUnpack, nullptr, dst, src, nullptr, cur,
                   nbytes);
}

}  // namespace mv2gnc::mpisim
