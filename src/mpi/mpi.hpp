// mpisim: the MPI-shaped communication API of the simulated cluster.
//
// The surface mirrors the MPI-2.2 subset the paper's code paths exercise:
// blocking and non-blocking point-to-point with tag/source matching
// (including wildcards), derived datatypes, and the collectives the
// applications need. Buffers may live in host memory or in simulated GPU
// device memory — the library detects device pointers (UVA-style) and
// routes them through the MV2-GPU-NC engine, which is precisely the
// paper's contribution ("the MPI library is responsible for staging").
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>

#include "mpi/datatype.hpp"

namespace mv2gnc::cusim {
class Stream;
}  // namespace mv2gnc::cusim

namespace mv2gnc::mpisim {

/// MPI_ANY_SOURCE.
inline constexpr int kAnySource = -1;
/// MPI_ANY_TAG. Wildcard receives never match the library's internal
/// (negative) collective tags.
inline constexpr int kAnyTag = -2;

/// Completion information of a receive (MPI_Status).
struct Status {
  int source = kAnySource;
  int tag = kAnyTag;
  std::size_t bytes = 0;  // packed bytes actually received

  /// MPI_Get_count: number of `dtype` elements received, or nullopt when
  /// the byte count is not a whole number of elements (MPI_UNDEFINED).
  std::optional<int> count(const Datatype& dtype) const;
};

/// Thrown when a matched message is larger than the posted receive buffer
/// (MPI_ERR_TRUNCATE).
class TruncationError : public std::runtime_error {
 public:
  explicit TruncationError(const std::string& what)
      : std::runtime_error(what) {}
};

/// Thrown by wait()/test() when the operation's transfer failed permanently
/// — e.g. the reliability layer exhausted its retransmission budget
/// (rndv_max_retries) on a lossy fabric. The request is complete in the
/// MPI sense (no longer in flight); the data did not arrive.
class RequestError : public std::runtime_error {
 public:
  explicit RequestError(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
struct ReqState;
struct CommGroup;
class RankComm;
}  // namespace detail

/// Per-rank MPI API call counters (productivity accounting, paper Table I).
struct ApiStats {
  std::uint64_t send = 0;
  std::uint64_t isend = 0;
  std::uint64_t recv = 0;
  std::uint64_t irecv = 0;
  std::uint64_t wait = 0;
  std::uint64_t waitall = 0;
};

/// Handle to an in-flight non-blocking operation (MPI_Request).
class Request {
 public:
  Request() = default;
  bool valid() const { return state_ != nullptr; }

 private:
  friend class Communicator;
  friend class detail::RankComm;
  explicit Request(std::shared_ptr<detail::ReqState> s)
      : state_(std::move(s)) {}
  std::shared_ptr<detail::ReqState> state_;
};

class Communicator;

/// A persistent communication request (MPI_Send_init / MPI_Recv_init):
/// the argument list is frozen once; start() posts a fresh operation each
/// iteration and wait()/test() complete it. The workhorse of iterative
/// halo-exchange codes.
class PersistentRequest {
 public:
  PersistentRequest() = default;

  /// Post the operation (MPI_Start). The previous round must be complete.
  /// With the persistent_plan_cache tunable on, the pack plan, chunk table
  /// and path decision are derived on the first start() and re-fired on
  /// every later one (docs/STREAMS.md).
  void start();
  /// Stream-triggered start (MPIX_Start_enqueue analogue): the operation
  /// fires when `stream`'s prior work drains (a rendezvous-sized send
  /// posts its RTS immediately and gates only the data-touching stages),
  /// and completion gates stream work enqueued after this call. With
  /// trigger_mode=polled this degrades to synchronize-then-start(), the
  /// CPU-driven baseline.
  void start_on(cusim::Stream& stream);
  /// Complete the current round (MPI_Wait).
  void wait(Status* status = nullptr);
  /// Poll the current round (MPI_Test).
  bool test(Status* status = nullptr);

  bool valid() const { return impl_ != nullptr; }

 private:
  friend class Communicator;
  struct Init;
  std::shared_ptr<Init> impl_;
};

/// Per-rank communicator handle (MPI_COMM_WORLD). Cheap to copy; all
/// copies refer to the same rank endpoint.
class Communicator {
 public:
  Communicator() = default;

  int rank() const;
  int size() const;

  // -- point-to-point ----------------------------------------------------
  /// MPI_Send. `tag` must be >= 0 (negative tags are reserved).
  void send(const void* buf, int count, const Datatype& dtype, int dst,
            int tag);
  /// MPI_Recv.
  void recv(void* buf, int count, const Datatype& dtype, int src, int tag,
            Status* status = nullptr);
  /// MPI_Isend.
  Request isend(const void* buf, int count, const Datatype& dtype, int dst,
                int tag);
  /// MPI_Irecv. `src` may be kAnySource, `tag` may be kAnyTag.
  Request irecv(void* buf, int count, const Datatype& dtype, int src,
                int tag);
  /// Stream-triggered isend (docs/STREAMS.md): the send fires when
  /// `stream`'s prior work drains — no host round trip between compute
  /// and communication — and its completion gates stream work enqueued
  /// after this call. trigger_mode=polled degrades to synchronize-then-
  /// isend, the CPU-driven baseline.
  Request isend_on(cusim::Stream& stream, const void* buf, int count,
                   const Datatype& dtype, int dst, int tag);
  /// Stream-triggered irecv: posted immediately (matching stays in program
  /// order); completion gates later work on `stream`.
  Request irecv_on(cusim::Stream& stream, void* buf, int count,
                   const Datatype& dtype, int src, int tag);
  /// MPI_Wait.
  void wait(Request& req, Status* status = nullptr);
  /// MPI_Test: non-blocking completion check (drives progress once).
  bool test(Request& req, Status* status = nullptr);
  /// MPI_Waitall.
  void waitall(std::span<Request> reqs);
  /// MPI_Sendrecv.
  void sendrecv(const void* sendbuf, int sendcount, const Datatype& sendtype,
                int dst, int sendtag, void* recvbuf, int recvcount,
                const Datatype& recvtype, int src, int recvtag,
                Status* status = nullptr);
  /// MPI_Send_init: freeze a send argument list for repeated start().
  PersistentRequest send_init(const void* buf, int count,
                              const Datatype& dtype, int dst, int tag);
  /// MPI_Recv_init.
  PersistentRequest recv_init(void* buf, int count, const Datatype& dtype,
                              int src, int tag);
  /// MPI_Startall.
  void startall(std::span<PersistentRequest> reqs);
  /// Stream-triggered startall: every request fires when `stream`'s prior
  /// work drains; completions gate later stream work (docs/STREAMS.md).
  void startall_on(cusim::Stream& stream, std::span<PersistentRequest> reqs);
  /// MPI_Waitall over persistent requests.
  void waitall_persistent(std::span<PersistentRequest> reqs);

  /// MPI_Iprobe: check for a matching incoming message without receiving
  /// it. Fills `status` (source/tag/bytes) when one is pending.
  bool iprobe(int src, int tag, Status* status = nullptr);
  /// MPI_Probe: block until a matching message is pending.
  void probe(int src, int tag, Status* status = nullptr);

  // -- explicit pack/unpack (MPI_Pack / MPI_Unpack) -----------------------
  /// Bytes needed to pack `count` elements of `dtype` (MPI_Pack_size).
  std::size_t pack_size(int count, const Datatype& dtype) const;
  /// MPI_Pack: append `count` elements at `inbuf` to `outbuf` at
  /// `position` (updated). GPU-aware: a device `inbuf` is packed with the
  /// datatype-offload engine.
  void pack(const void* inbuf, int count, const Datatype& dtype,
            void* outbuf, std::size_t outsize, std::size_t& position);
  /// MPI_Unpack: the reverse; a device `outbuf` is unpacked on the GPU.
  void unpack(const void* inbuf, std::size_t insize, std::size_t& position,
              void* outbuf, int count, const Datatype& dtype);

  // -- communicator management ---------------------------------------------
  /// MPI_UNDEFINED for split().
  static constexpr int kUndefinedColor = -1;
  /// MPI_Comm_split: members passing the same color (>= 0) form a new
  /// communicator ordered by (key, parent rank); kUndefinedColor yields an
  /// invalid (null) communicator. Collective over this communicator.
  Communicator split(int color, int key = 0);
  /// MPI_Comm_dup: a new context over the same group (traffic on the dup
  /// never matches traffic on the parent). Collective.
  Communicator dup();

  // -- collectives ---------------------------------------------------------
  // All collectives are built on the point-to-point layer, so buffers may
  // live in GPU device memory (GPU-aware collectives — the "more
  // applications" direction of the paper's future work). When the topology
  // co-locates ranks, two-level (intra-node + leader) variants run the
  // node-local phase over the IPC transport; see docs/COLLECTIVES.md and
  // the coll_select tunable.

  /// MPI_Barrier (dissemination algorithm).
  void barrier();
  /// MPI_Bcast (binomial tree).
  void bcast(void* buf, int count, const Datatype& dtype, int root);
  /// MPI_Allreduce(MPI_SUM) over doubles. Host buffers only.
  void allreduce_sum(const double* sendbuf, double* recvbuf, int count);
  /// MPI_Allreduce(MPI_MAX) over doubles. Host buffers only.
  void allreduce_max(const double* sendbuf, double* recvbuf, int count);
  /// MPI_Gather: rank i's `count` elements land at recvbuf + i*count
  /// elements on `root` (recvbuf significant at root only).
  void gather(const void* sendbuf, int count, const Datatype& dtype,
              void* recvbuf, int root);
  /// MPI_Scatter: the inverse of gather (sendbuf significant at root).
  void scatter(const void* sendbuf, void* recvbuf, int count,
               const Datatype& dtype, int root);
  /// MPI_Allgather (ring): every rank ends with all p blocks, no root
  /// round-trip.
  void allgather(const void* sendbuf, int count, const Datatype& dtype,
                 void* recvbuf);
  /// MPI_Alltoall (pairwise exchange): block j of sendbuf goes to rank j;
  /// block i of recvbuf comes from rank i. Each block is `count` elements.
  void alltoall(const void* sendbuf, void* recvbuf, int count,
                const Datatype& dtype);

  /// MPI_Wtime: virtual seconds since simulation start.
  double wtime() const;

  /// API-call counters for this rank.
  const ApiStats& api_stats() const;
  void reset_api_stats();

  bool valid() const { return impl_ != nullptr; }

 private:
  friend class Cluster;
  friend class PersistentRequest;
  explicit Communicator(detail::RankComm* impl);
  Communicator(detail::RankComm* impl,
               std::shared_ptr<const detail::CommGroup> group);
  detail::RankComm& impl() const;
  const detail::CommGroup& group() const;
  // Translate the world-rank source in a completed Status to a comm rank.
  void localize(Status* status) const;
  detail::RankComm* impl_ = nullptr;
  std::shared_ptr<const detail::CommGroup> group_;
};

}  // namespace mv2gnc::mpisim
