#!/usr/bin/env bash
# Run every benchmark binary and collect outputs under bench_results/.
# Usage: scripts/run_benches.sh [build-dir]
set -euo pipefail

BUILD_DIR="${1:-build}"
OUT_DIR="bench_results"
mkdir -p "${OUT_DIR}"

if [ ! -d "${BUILD_DIR}/bench" ]; then
  echo "error: ${BUILD_DIR}/bench not found — build first:" >&2
  echo "  cmake -B ${BUILD_DIR} -G Ninja && cmake --build ${BUILD_DIR}" >&2
  exit 1
fi

# Benches that support it drop machine-readable BENCH_<name>.json here.
export MV2GNC_BENCH_JSON_DIR="${OUT_DIR}"

for bin in "${BUILD_DIR}"/bench/*; do
  # -f guards against CMakeFiles/ and friends, which are executable dirs.
  [ -f "${bin}" ] && [ -x "${bin}" ] || continue
  name="$(basename "${bin}")"
  echo "== ${name} =="
  "${bin}" | tee "${OUT_DIR}/${name}.txt"
done

echo
echo "outputs written to ${OUT_DIR}/"
ls "${OUT_DIR}"/BENCH_*.json >/dev/null 2>&1 && {
  echo "json metrics:"
  ls -1 "${OUT_DIR}"/BENCH_*.json | sed 's/^/  /'
}

# Cluster::print_stats appends a per-rank fault/retry table only when a run
# injected faults or retransmitted anything. Surface those runs so a bench
# quietly limping through retransmissions doesn't pass for a clean number.
echo
echo "== reliability summary =="
found=0
for f in "${OUT_DIR}"/*.txt; do
  [ -f "${f}" ] || continue
  if grep -q "rank  faults" "${f}"; then
    found=1
    echo "-- $(basename "${f}" .txt)"
    grep -A 100 "rank  faults" "${f}" | sed 's/^/   /'
  fi
done
if [ "${found}" -eq 0 ]; then
  echo "no faults injected, no retransmissions — all benches ran clean"
fi
