#!/usr/bin/env bash
# Run every benchmark binary and collect outputs under bench_results/.
# Usage: scripts/run_benches.sh [build-dir]
set -euo pipefail

BUILD_DIR="${1:-build}"
OUT_DIR="bench_results"
mkdir -p "${OUT_DIR}"

if [ ! -d "${BUILD_DIR}/bench" ]; then
  echo "error: ${BUILD_DIR}/bench not found — build first:" >&2
  echo "  cmake -B ${BUILD_DIR} -G Ninja && cmake --build ${BUILD_DIR}" >&2
  exit 1
fi

for bin in "${BUILD_DIR}"/bench/*; do
  [ -x "${bin}" ] || continue
  name="$(basename "${bin}")"
  echo "== ${name} =="
  "${bin}" | tee "${OUT_DIR}/${name}.txt"
done

echo
echo "outputs written to ${OUT_DIR}/"
