#!/usr/bin/env bash
# Full chaos sweep: the three-seed fault matrix soak plus the seeded chaos,
# IPC-reliability and failover test suites. CI runs only the one-seed
# `chaos_smoke` target; this is the pre-release / soak-debugging variant.
# Usage: scripts/run_chaos_sweep.sh [build-dir]
set -euo pipefail

BUILD_DIR="${1:-build}"
OUT_DIR="chaos_results"
mkdir -p "${OUT_DIR}"

if [ ! -x "${BUILD_DIR}/bench/bench_chaos_soak" ]; then
  echo "error: ${BUILD_DIR}/bench/bench_chaos_soak not found — build first:" >&2
  echo "  cmake -B ${BUILD_DIR} && cmake --build ${BUILD_DIR}" >&2
  exit 1
fi

export MV2GNC_BENCH_JSON_DIR="${OUT_DIR}"

status=0

echo "== bench_chaos_soak (full three-seed matrix) =="
"${BUILD_DIR}/bench/bench_chaos_soak" | tee "${OUT_DIR}/bench_chaos_soak.txt" \
  || status=$?

# The deterministic fault-domain test suites, rerun here so a sweep failure
# comes with the matching unit-level diagnosis in the same output dir.
for t in test_chaos test_ipc_reliability test_core_transport_failover; do
  bin="${BUILD_DIR}/tests/${t}"
  if [ ! -x "${bin}" ]; then
    echo "warning: ${bin} missing, skipped" >&2
    continue
  fi
  echo "== ${t} =="
  "${bin}" | tee "${OUT_DIR}/${t}.txt" || status=$?
done

echo
if [ "${status}" -eq 0 ]; then
  echo "chaos sweep clean — outputs in ${OUT_DIR}/"
else
  echo "chaos sweep FAILED (see ${OUT_DIR}/)" >&2
fi
exit "${status}"
