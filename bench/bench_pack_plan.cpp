// Pack-plan engine benchmarks.
//
// Three claims, in order:
//   1. The plan cache removes per-send planning overhead: a warm
//      PlanCache::get is >= 10x cheaper than rebuilding the plan (the
//      flatten + decompose work every send paid before the cache).
//      This section measures real wall-clock time, not simulated time.
//   2. Sub-pattern decomposition pays on the wire: a decomposable
//      hindexed layout (batched cudaMemcpy2DAsync pack) beats a
//      degenerate layout of identical packed size and run count that
//      must take the generalized per-run kernel.
//   3. Section V-B3 ablation: the (n+2)*T(N/n) cost model picks the
//      pipeline chunk per message. Pipelining activates only beyond the
//      64 KB pipeline threshold, and chunk_select=fixed remains a hard
//      override for A/B tuning.
#include <chrono>
#include <cstdint>
#include <iostream>
#include <numeric>
#include <vector>

#include "apps/reporting.hpp"
#include "apps/vector_bench.hpp"
#include "bench_util.hpp"
#include "core/gpu_staging.hpp"
#include "core/msg_view.hpp"
#include "core/pack_plan.hpp"
#include "core/tunables.hpp"
#include "mpi/cluster.hpp"
#include "mpi/datatype.hpp"

namespace apps = mv2gnc::apps;
namespace bench = mv2gnc::bench;
namespace core = mv2gnc::core;
namespace mpisim = mv2gnc::mpisim;
namespace sim = mv2gnc::sim;
using mpisim::Datatype;

namespace {

// Wall-clock nanoseconds per call of `fn` over `iters` calls.
template <typename Fn>
double wall_ns_per_call(int iters, Fn&& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i) fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::nano>(t1 - t0).count() / iters;
}

// 4096-run hindexed type: big enough that flatten + decompose dominate.
Datatype planning_workload() {
  std::vector<int> lens(4096, 64);
  std::vector<std::int64_t> displs(4096);
  for (std::size_t i = 0; i < displs.size(); ++i) {
    displs[i] = static_cast<std::int64_t>(i) * 128;
  }
  Datatype t = Datatype::hindexed(lens, displs, Datatype::byte());
  t.commit();
  return t;
}

// 65536 x 16 B runs (1 MB packed) in 8 uniform groups: decomposes into 8
// sub-patterns, so a pipeline chunk packs as one or two batched 2-D copies
// covering thousands of rows each — deep enough past the per-row cost knee
// that batching beats issuing every run individually.
Datatype decomposable_1mb(std::size_t& span) {
  std::vector<int> lens(65536, 16);
  std::vector<std::int64_t> displs(65536);
  std::int64_t base = 0;
  for (int g = 0; g < 8; ++g) {
    for (int i = 0; i < 8192; ++i) displs[g * 8192 + i] = base + i * 32;
    base += 8192 * 32 + 4096;  // gap breaks the uniform stride between groups
  }
  span = static_cast<std::size_t>(base);
  Datatype t = Datatype::hindexed(lens, displs, Datatype::byte());
  t.commit();
  return t;
}

// Same packed bytes and run count, but alternating 8/24 B lengths defeat
// grouping: the plan stays kIrregular and packs with the generalized kernel,
// paying the full per-run cost for every one of the 65536 runs.
Datatype degenerate_1mb(std::size_t& span) {
  std::vector<int> lens(65536);
  std::vector<std::int64_t> displs(65536);
  for (int i = 0; i < 65536; ++i) {
    lens[i] = 8 + (i % 2) * 16;
    displs[i] = static_cast<std::int64_t>(i) * 32;
  }
  span = 65536u * 32u;
  Datatype t = Datatype::hindexed(lens, displs, Datatype::byte());
  t.commit();
  return t;
}

// One-way ping-pong latency of a device-resident `t` between two GPUs.
sim::SimTime dtype_latency(const Datatype& t, std::size_t span,
                           const mpisim::ClusterConfig& cfg, int iters = 3) {
  mpisim::ClusterConfig c = cfg;
  c.ranks = 2;
  mpisim::Cluster cluster(c);
  sim::SimTime one_way = 0;
  cluster.run([&](mpisim::Context& ctx) {
    void* dev = ctx.cuda->malloc(span);
    const int peer = 1 - ctx.rank;
    ctx.comm.barrier();
    sim::SimTime t0 = 0;
    for (int it = -1; it < iters; ++it) {
      if (it == 0) {
        ctx.comm.barrier();
        t0 = ctx.engine->now();
      }
      if (ctx.rank == 0) {
        ctx.comm.send(dev, 1, t, peer, 0);
        ctx.comm.recv(dev, 1, t, peer, 0);
      } else {
        ctx.comm.recv(dev, 1, t, peer, 0);
        ctx.comm.send(dev, 1, t, peer, 0);
      }
    }
    if (ctx.rank == 0) one_way = (ctx.engine->now() - t0) / (2 * iters);
  });
  return one_way;
}

}  // namespace

int main() {
  bench::JsonReport json("pack_plan");

  // -- 1. planning overhead: cold build vs warm cache hit ------------------
  bench::banner("Plan cache: per-send planning overhead",
                "design goal: repeated sends skip flatten + decompose");
  auto& cache = core::PlanCache::instance();
  cache.reset();
  const Datatype workload = planning_workload();
  constexpr int kPlanIters = 400;
  const double cold_ns = wall_ns_per_call(kPlanIters, [&] {
    auto p = core::PackPlan::build(workload, 1);
    (void)p;
  });
  cache.get(workload, 1);  // prime
  const double warm_ns = wall_ns_per_call(kPlanIters, [&] {
    auto p = cache.get(workload, 1);
    (void)p;
  });
  const double speedup = cold_ns / warm_ns;
  std::cout << "\n4096-run hindexed, per plan acquisition (wall clock):\n"
            << "  cold PackPlan::build : " << cold_ns << " ns\n"
            << "  warm PlanCache::get  : " << warm_ns << " ns\n"
            << "  speedup              : " << speedup << "x\n";
  json.add("plan_cold_build_ns", cold_ns);
  json.add("plan_warm_get_ns", warm_ns);
  json.add("plan_cache_speedup", speedup);

  // -- 2. irregular layouts: batched 2-D vs generalized kernel -------------
  bench::banner("Irregular pipelined latency: batched 2-D vs generalized",
                "Section IV-A generalization of the Figure 2 pack schemes");
  cache.reset();
  std::size_t span_dec = 0, span_deg = 0;
  const Datatype dec = decomposable_1mb(span_dec);
  const Datatype deg = degenerate_1mb(span_deg);
  mpisim::ClusterConfig cfg;  // defaults: model-driven selection, offload on
  const sim::SimTime t_dec = dtype_latency(dec, span_dec, cfg);
  const sim::SimTime t_deg = dtype_latency(deg, span_deg, cfg);
  apps::Table irr("1 MB packed, 65536 runs, one-way latency",
                  {"layout", "pack path", "latency (us)"});
  irr.add_row({"8 uniform groups", "batched memcpy2d", apps::format_us(t_dec)});
  irr.add_row({"alternating 8/24", "generalized kernel",
               apps::format_us(t_deg)});
  irr.print(std::cout);
  std::cout << "batched improvement over generalized: "
            << apps::format_improvement(static_cast<double>(t_deg),
                                        static_cast<double>(t_dec))
            << "\n";
  const auto stats = mpisim::Cluster::plan_cache_stats();
  std::cout << "plan cache after both runs: " << stats.lookups()
            << " lookups, " << stats.hits << " hits, " << stats.misses
            << " misses\n";
  json.add("irregular_batched_us", sim::to_us(t_dec));
  json.add("irregular_generalized_us", sim::to_us(t_deg));
  json.add("plan_cache_hits", static_cast<double>(stats.hits));
  json.add("plan_cache_misses", static_cast<double>(stats.misses));

  // -- 3. cost-model chunk selection ablation ------------------------------
  bench::banner("Chunk selection: cost model vs fixed 64 KB vs forced 16 KB",
                "Sections IV-B and V-B3 (pipeline block size)");
  const std::vector<std::size_t> sizes = {16u << 10, 64u << 10, 256u << 10,
                                          1u << 20, 4u << 20};
  apps::Table ab("MV2-GPU-NC vector latency by chunk policy",
                 {"msg", "model chunk", "chunks", "model (us)", "fixed 64K (us)",
                  "forced 16K (us)"});
  for (std::size_t bytes : sizes) {
    const std::size_t rows = bytes / 4;
    // What the model picks for this message (device-resident vector).
    std::size_t model_chunk = 0;
    bench::run_single_gpu([&](sim::Engine&, mv2gnc::cusim::CudaContext& ctx) {
      Datatype t = Datatype::vector(static_cast<int>(rows), 1, 2,
                                    Datatype::float32());
      t.commit();
      void* dev = ctx.malloc(rows * 8);
      const auto msg =
          core::MsgView::make(dev, 1, t, ctx.device().registry());
      core::Tunables tun;
      model_chunk =
          bytes <= tun.pipeline_threshold  // below it the rndv path
              ? bytes                      // sends one unpipelined chunk
              : core::select_chunk_bytes(ctx.device().cost(), msg, true,
                                         tun.chunk_bytes);
      ctx.free(dev);
    });
    mpisim::ClusterConfig model_cfg;  // chunk_select defaults to the model
    mpisim::ClusterConfig fixed_cfg;
    fixed_cfg.tunables.chunk_select = core::ChunkSelect::kFixed;
    mpisim::ClusterConfig forced_cfg;
    forced_cfg.tunables.chunk_select = core::ChunkSelect::kFixed;
    forced_cfg.tunables.chunk_bytes = 16u << 10;
    const sim::SimTime t_model = apps::measure_vector_latency(
        apps::VectorMethod::kMv2GpuNc, rows, 3, model_cfg);
    const sim::SimTime t_fixed = apps::measure_vector_latency(
        apps::VectorMethod::kMv2GpuNc, rows, 3, fixed_cfg);
    const sim::SimTime t_forced = apps::measure_vector_latency(
        apps::VectorMethod::kMv2GpuNc, rows, 3, forced_cfg);
    const std::size_t nchunks = (bytes + model_chunk - 1) / model_chunk;
    ab.add_row({apps::format_bytes(bytes), apps::format_bytes(model_chunk),
                std::to_string(nchunks), apps::format_us(t_model),
                apps::format_us(t_fixed), apps::format_us(t_forced)});
    json.add("chunk_model_bytes_" + apps::format_bytes(bytes),
             static_cast<double>(model_chunk));
    json.add("latency_model_us_" + apps::format_bytes(bytes),
             sim::to_us(t_model));
    json.add("latency_fixed64k_us_" + apps::format_bytes(bytes),
             sim::to_us(t_fixed));
    json.add("latency_forced16k_us_" + apps::format_bytes(bytes),
             sim::to_us(t_forced));
  }
  ab.print(std::cout);
  std::cout << "\nMessages at or below the 64 KB pipeline threshold go as a\n"
               "single chunk; beyond it the model picks the block that\n"
               "minimizes (n+2)*T(N/n). chunk_select=fixed pins the\n"
               "configured chunk_bytes regardless (forced 16 KB column).\n";

  json.write_and_note();
  return 0;
}
