// Reproduces paper Table II: Stencil2D median execution times, single
// precision, on 1x8 / 8x1 / 2x4 / 4x2 process grids.
#include "stencil_tables_common.hpp"

int main() {
  return mv2gnc::bench::run_stencil_table(
      false, "Table II: single precision",
      "Table II (Stencil2D-Def vs Stencil2D-MV2-GPU-NC, SP)");
}
