// google-benchmark microbenchmarks of the host datatype engine — the one
// component whose cost is real CPU work rather than simulated time. These
// are the pack/unpack loops the baseline (non-offloaded) path runs on the
// host, so their real throughput is worth tracking.
#include <benchmark/benchmark.h>

#include <array>
#include <memory>
#include <vector>

#include "mpi/datatype.hpp"

using mv2gnc::mpisim::Datatype;

namespace {

Datatype committed(Datatype t) {
  t.commit();
  return t;
}

void BM_PackVector(benchmark::State& state) {
  const int rows = static_cast<int>(state.range(0));
  auto t = committed(Datatype::vector(rows, 1, 4, Datatype::float32()));
  std::vector<std::byte> src(static_cast<std::size_t>(t.extent()) + 64);
  std::vector<std::byte> dst(t.size());
  for (auto _ : state) {
    t.pack(src.data(), 1, dst.data());
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(t.size()));
}
BENCHMARK(BM_PackVector)->Range(256, 1 << 18);

void BM_UnpackVector(benchmark::State& state) {
  const int rows = static_cast<int>(state.range(0));
  auto t = committed(Datatype::vector(rows, 1, 4, Datatype::float32()));
  std::vector<std::byte> packed(t.size());
  std::vector<std::byte> dst(static_cast<std::size_t>(t.extent()) + 64);
  for (auto _ : state) {
    t.unpack(packed.data(), 1, dst.data());
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(t.size()));
}
BENCHMARK(BM_UnpackVector)->Range(256, 1 << 18);

void BM_PackVectorWideBlocks(benchmark::State& state) {
  // 64-byte blocks: the memcpy-per-segment regime.
  const int rows = static_cast<int>(state.range(0));
  auto t = committed(Datatype::vector(rows, 16, 32, Datatype::float32()));
  std::vector<std::byte> src(static_cast<std::size_t>(t.extent()) + 64);
  std::vector<std::byte> dst(t.size());
  for (auto _ : state) {
    t.pack(src.data(), 1, dst.data());
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(t.size()));
}
BENCHMARK(BM_PackVectorWideBlocks)->Range(256, 1 << 16);

void BM_PackBytesChunked(benchmark::State& state) {
  // The pipeline's slice operation: pack 64 KB windows of a large vector.
  auto t = committed(Datatype::vector(1 << 18, 1, 4, Datatype::float32()));
  std::vector<std::byte> src(static_cast<std::size_t>(t.extent()) + 64);
  std::vector<std::byte> dst(64 << 10);
  const std::size_t total = t.size();
  std::size_t off = 0;
  for (auto _ : state) {
    const std::size_t n = std::min<std::size_t>(64 << 10, total - off);
    t.pack_bytes(src.data(), 1, off, n, dst.data());
    off += n;
    if (off >= total) off = 0;
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          (64 << 10));
}
BENCHMARK(BM_PackBytesChunked);

void BM_PackIndexedIrregular(benchmark::State& state) {
  const std::array<int, 4> lens{3, 1, 4, 2};
  const std::array<int, 4> displs{0, 7, 11, 29};
  auto t = committed(Datatype::indexed(lens, displs, Datatype::int32()));
  const int count = static_cast<int>(state.range(0));
  std::vector<std::byte> src(
      static_cast<std::size_t>(t.extent()) * count + 64);
  std::vector<std::byte> dst(t.size() * static_cast<std::size_t>(count));
  for (auto _ : state) {
    t.pack(src.data(), count, dst.data());
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(dst.size()));
}
BENCHMARK(BM_PackIndexedIrregular)->Range(64, 1 << 14);

void BM_TypeCommitVector(benchmark::State& state) {
  const int rows = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto t = Datatype::vector(rows, 1, 4, Datatype::float32());
    t.commit();
    benchmark::DoNotOptimize(t.segments().data());
  }
}
BENCHMARK(BM_TypeCommitVector)->Range(256, 1 << 16);

void BM_Subarray3DPack(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const std::array<int, 3> sizes{n, n, n};
  const std::array<int, 3> subs{n / 2, n / 2, n / 2};
  const std::array<int, 3> starts{n / 4, n / 4, n / 4};
  auto t = committed(Datatype::subarray(sizes, subs, starts,
                                        mv2gnc::mpisim::ArrayOrder::kC,
                                        Datatype::float64()));
  std::vector<std::byte> src(static_cast<std::size_t>(t.extent()) + 64);
  std::vector<std::byte> dst(t.size());
  for (auto _ : state) {
    t.pack(src.data(), 1, dst.data());
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(t.size()));
}
BENCHMARK(BM_Subarray3DPack)->Arg(16)->Arg(32)->Arg(64);

}  // namespace

BENCHMARK_MAIN();
