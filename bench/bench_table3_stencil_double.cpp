// Reproduces paper Table III: Stencil2D median execution times, double
// precision, on 1x8 / 8x1 / 2x4 / 4x2 process grids.
#include "stencil_tables_common.hpp"

int main() {
  return mv2gnc::bench::run_stencil_table(
      true, "Table III: double precision",
      "Table III (Stencil2D-Def vs Stencil2D-MV2-GPU-NC, DP)");
}
