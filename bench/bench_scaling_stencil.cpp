// Scaling study: Stencil2D weak scaling across process-grid sizes.
//
// Fixed 4K x 4K single-precision tile per process; the grid grows from 1
// to 8 ranks. As neighbours appear, communication grows while compute per
// rank stays constant — the gap between Def and MV2-GPU-NC widens with
// the non-contiguous (east/west) neighbour count. Not a paper table, but
// the scaling behaviour the paper's per-grid results imply.
#include <iostream>
#include <vector>

#include "apps/reporting.hpp"
#include "apps/stencil2d.hpp"
#include "bench_util.hpp"

namespace bench = mv2gnc::bench;
namespace apps = mv2gnc::apps;
namespace mpisim = mv2gnc::mpisim;

namespace {

double run_case(int pr, int pc, apps::StencilConfig::Variant v) {
  apps::StencilConfig cfg;
  cfg.proc_rows = pr;
  cfg.proc_cols = pc;
  cfg.local_rows = 4096;
  cfg.local_cols = 4096;
  cfg.iterations = 10;
  cfg.variant = v;
  mpisim::Cluster cluster(mpisim::ClusterConfig{.ranks = cfg.ranks()});
  double seconds = 0;
  cluster.run([&](mpisim::Context& ctx) {
    auto r = apps::run_stencil(ctx, cfg);
    if (ctx.rank == 0) seconds = r.seconds;
  });
  return seconds;
}

}  // namespace

int main() {
  bench::banner("Stencil2D weak scaling (4K x 4K SP per process, 10 iters)",
                "scaling companion to Tables II/III");
  apps::Table table("Per-grid times",
                    {"grid", "ranks", "Def (s)", "MV2-GPU-NC (s)",
                     "improvement"});
  const struct {
    int pr, pc;
  } grids[] = {{1, 1}, {1, 2}, {2, 2}, {2, 4}};
  for (const auto& g : grids) {
    const double d = run_case(g.pr, g.pc,
                              apps::StencilConfig::Variant::kDef);
    const double n = run_case(g.pr, g.pc,
                              apps::StencilConfig::Variant::kMv2GpuNc);
    char db[32], nb[32];
    std::snprintf(db, sizeof(db), "%.4f", d);
    std::snprintf(nb, sizeof(nb), "%.4f", n);
    table.add_row({std::to_string(g.pr) + "x" + std::to_string(g.pc),
                   std::to_string(g.pr * g.pc), db, nb,
                   apps::format_improvement(d, n)});
  }
  table.print(std::cout);
  std::cout << "\nExpected: 1x1 identical (no communication); the gap "
               "widens as east/west neighbours appear.\n";
  return 0;
}
