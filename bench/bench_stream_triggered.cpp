// Stream-triggered rendezvous vs the CPU-driven loop (docs/STREAMS.md).
//
// A stencil-style iteration — compute kernel, then halo exchange of a
// Figure-5 vector layout between two GPUs — run three ways:
//
//   cpu-driven   cudaStreamSynchronize(), then isend/irecv/waitall: the
//                host sits between compute and communication every
//                iteration (paper Fig. 4(b), the MV2-GPU-NC baseline).
//   stream       isend_on/irecv_on: the send fires when the stream drains
//                past the compute kernel; completion gates later stream
//                work. No host turnaround.
//   persist      send_init/recv_init once (persistent_plan_cache=1), then
//                startall_on per iteration: the pack plan, chunk table and
//                path decision are derived once and re-fired; a rendezvous
//                send posts its RTS immediately, so the whole RTS/CTS
//                handshake overlaps the compute kernel.
//
// All sizes ride the rendezvous path (eager_threshold=0), as the paper's
// pipelined designs do. The bench asserts the win it claims: persist
// beats cpu-driven elapsed at small/medium sizes and never pays more
// post-compute host time.
#include <array>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "apps/reporting.hpp"
#include "bench_util.hpp"
#include "mpi/cluster.hpp"

namespace bench = mv2gnc::bench;
namespace apps = mv2gnc::apps;
namespace core = mv2gnc::core;
namespace cusim = mv2gnc::cusim;
namespace mpisim = mv2gnc::mpisim;
namespace sim = mv2gnc::sim;

namespace {

enum class Mode { kCpuDriven, kStreamTriggered, kPersistentStream };

struct ModeResult {
  sim::SimTime elapsed_per_iter = 0;    // whole-loop time / iterations
  sim::SimTime host_post_per_iter = 0;  // post-compute host posting time
  std::uint64_t plan_cache_hits = 0;
};

// Virtual compute time of the stencil kernel each iteration. Long enough
// that an overlapped RTS/CTS handshake completes before the kernel does.
constexpr sim::SimTime kComputeNs = 20'000;

ModeResult run_mode(Mode mode, std::size_t bytes, int iters) {
  mpisim::ClusterConfig cfg;
  cfg.ranks = 2;
  // Every size takes the rendezvous path — the protocol under test.
  cfg.tunables.eager_threshold = 0;
  if (mode != Mode::kCpuDriven) {
    cfg.tunables.trigger_mode = core::TriggerMode::kStream;
  }
  if (mode == Mode::kPersistentStream) {
    cfg.tunables.persistent_plan_cache = true;
  }
  ModeResult res;
  mpisim::Cluster cluster(cfg);
  cluster.run([&](mpisim::Context& ctx) {
    const int peer = 1 - ctx.rank;
    // Figure-5 layout: a strided column of 4-byte elements.
    auto col = mpisim::Datatype::vector(static_cast<int>(bytes / 4), 1, 2,
                                        mpisim::Datatype::int32());
    col.commit();
    const std::size_t span = static_cast<std::size_t>(col.extent()) + 64;
    auto* sendbuf = static_cast<std::byte*>(ctx.cuda->malloc(span));
    auto* recvbuf = static_cast<std::byte*>(ctx.cuda->malloc(span));
    cusim::Stream stream = ctx.cuda->create_stream();
    std::array<mpisim::PersistentRequest, 2> preqs;
    if (mode == Mode::kPersistentStream) {
      // The send precedes the recv so its stream ops (none today; the
      // rendezvous re-fire posts immediately) never queue behind the
      // recv's completion wait.
      preqs[0] = ctx.comm.send_init(sendbuf, 1, col, peer, 7);
      preqs[1] = ctx.comm.recv_init(recvbuf, 1, col, peer, 7);
    }
    ctx.comm.barrier();
    const sim::SimTime t0 = ctx.now();
    sim::SimTime host_post = 0;
    for (int it = 0; it < iters; ++it) {
      ctx.cuda->launch_kernel_timed(stream, kComputeNs, [] {});
      switch (mode) {
        case Mode::kCpuDriven: {
          stream.synchronize();
          const sim::SimTime p0 = ctx.now();
          mpisim::Request sr = ctx.comm.isend(sendbuf, 1, col, peer, 7);
          mpisim::Request rr = ctx.comm.irecv(recvbuf, 1, col, peer, 7);
          host_post += ctx.now() - p0;
          std::array<mpisim::Request, 2> reqs{sr, rr};
          ctx.comm.waitall(reqs);
          break;
        }
        case Mode::kStreamTriggered: {
          // Send first: its host trigger must ride the stream ahead of
          // any completion wait flags.
          mpisim::Request sr =
              ctx.comm.isend_on(stream, sendbuf, 1, col, peer, 7);
          mpisim::Request rr =
              ctx.comm.irecv_on(stream, recvbuf, 1, col, peer, 7);
          std::array<mpisim::Request, 2> reqs{sr, rr};
          ctx.comm.waitall(reqs);
          break;
        }
        case Mode::kPersistentStream: {
          ctx.comm.startall_on(stream, preqs);
          ctx.comm.waitall_persistent(preqs);
          break;
        }
      }
    }
    ctx.comm.barrier();
    if (ctx.rank == 0) {
      res.elapsed_per_iter = (ctx.now() - t0) / iters;
      res.host_post_per_iter = host_post / iters;
    }
    ctx.cuda->free(sendbuf);
    ctx.cuda->free(recvbuf);
  });
  if (mode == Mode::kPersistentStream) {
    res.plan_cache_hits =
        cluster.trigger_stats(0).plan_cache_hits +
        cluster.trigger_stats(1).plan_cache_hits;
  }
  return res;
}

// One representative persistent run with the trigger-graph counter table.
void show_trigger_stats(std::size_t bytes, int iters) {
  mpisim::ClusterConfig cfg;
  cfg.ranks = 2;
  cfg.tunables.eager_threshold = 0;
  cfg.tunables.trigger_mode = core::TriggerMode::kStream;
  cfg.tunables.persistent_plan_cache = true;
  mpisim::Cluster cluster(cfg);
  cluster.run([&](mpisim::Context& ctx) {
    const int peer = 1 - ctx.rank;
    auto col = mpisim::Datatype::vector(static_cast<int>(bytes / 4), 1, 2,
                                        mpisim::Datatype::int32());
    col.commit();
    const std::size_t span = static_cast<std::size_t>(col.extent()) + 64;
    auto* sendbuf = static_cast<std::byte*>(ctx.cuda->malloc(span));
    auto* recvbuf = static_cast<std::byte*>(ctx.cuda->malloc(span));
    cusim::Stream stream = ctx.cuda->create_stream();
    std::array<mpisim::PersistentRequest, 2> preqs = {
        ctx.comm.send_init(sendbuf, 1, col, peer, 7),
        ctx.comm.recv_init(recvbuf, 1, col, peer, 7)};
    for (int it = 0; it < iters; ++it) {
      ctx.cuda->launch_kernel_timed(stream, kComputeNs, [] {});
      ctx.comm.startall_on(stream, preqs);
      ctx.comm.waitall_persistent(preqs);
    }
    ctx.cuda->free(sendbuf);
    ctx.cuda->free(recvbuf);
  });
  std::cout << "\nTrigger-graph counters (persistent+stream, "
            << apps::format_bytes(bytes) << " x " << iters
            << " iterations):\n";
  cluster.print_stats(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::string(argv[1]) == "--smoke";
  bench::banner("Stream-triggered rendezvous: stencil iteration loop",
                "MPIX stream/partitioned direction of the paper's §V "
                "pipeline (docs/STREAMS.md)");
  const std::vector<std::size_t> sizes =
      smoke ? std::vector<std::size_t>{4096, 65536}
            : std::vector<std::size_t>{1024,  4096,   16384,
                                       65536, 262144, 1048576};
  const int iters = smoke ? 3 : 10;
  bench::JsonReport report("stream");
  apps::Table table("Per-iteration time: compute + halo exchange",
                    {"size", "cpu-driven (us)", "stream (us)",
                     "persist+stream (us)", "improvement", "host-post (us)"});
  bool ok = true;
  for (std::size_t s : sizes) {
    const ModeResult cpu = run_mode(Mode::kCpuDriven, s, iters);
    const ModeResult str = run_mode(Mode::kStreamTriggered, s, iters);
    const ModeResult per = run_mode(Mode::kPersistentStream, s, iters);
    table.add_row(
        {apps::format_bytes(s), apps::format_us(cpu.elapsed_per_iter),
         apps::format_us(str.elapsed_per_iter),
         apps::format_us(per.elapsed_per_iter),
         apps::format_improvement(static_cast<double>(cpu.elapsed_per_iter),
                                  static_cast<double>(per.elapsed_per_iter)),
         apps::format_us(cpu.host_post_per_iter) + " -> 0.0"});
    report.add("cpu_us_" + std::to_string(s),
               static_cast<double>(cpu.elapsed_per_iter) / 1000.0);
    report.add("stream_us_" + std::to_string(s),
               static_cast<double>(str.elapsed_per_iter) / 1000.0);
    report.add("persist_us_" + std::to_string(s),
               static_cast<double>(per.elapsed_per_iter) / 1000.0);
    report.add("cpu_host_post_us_" + std::to_string(s),
               static_cast<double>(cpu.host_post_per_iter) / 1000.0);
    report.add("plan_cache_hits_" + std::to_string(s),
               static_cast<double>(per.plan_cache_hits));
    // The claims this bench exists to back, asserted in-bench:
    // (1) persistent+stream beats the CPU-driven loop at small/medium
    //     sizes (the overlapped handshake is a fixed win per iteration);
    if (s <= 65536 && per.elapsed_per_iter >= cpu.elapsed_per_iter) {
      std::cout << "FAIL: persist+stream (" << per.elapsed_per_iter
                << " ns) did not beat cpu-driven (" << cpu.elapsed_per_iter
                << " ns) at " << s << " B\n";
      ok = false;
    }
    // (2) ... and never pays MORE post-compute host time (it pays none:
    //     every post happens before the kernel completes).
    if (per.host_post_per_iter > cpu.host_post_per_iter) {
      std::cout << "FAIL: persist+stream host-post time exceeds cpu-driven "
                   "at " << s << " B\n";
      ok = false;
    }
    // (3) the persistent plan cache actually re-fires: every start after
    //     the first is a hit on each side.
    const std::uint64_t expect_hits = 2ull * (static_cast<std::uint64_t>(iters) - 1);
    if (per.plan_cache_hits < expect_hits) {
      std::cout << "FAIL: expected >= " << expect_hits
                << " plan-cache hits at " << s << " B, got "
                << per.plan_cache_hits << "\n";
      ok = false;
    }
  }
  table.print(std::cout);
  show_trigger_stats(smoke ? 65536 : 262144, iters);
  report.write_and_note();
  if (!ok) {
    std::cout << "\nerror: stream-triggered win assertions failed\n";
    return 1;
  }
  std::cout << "\nExpected: persist+stream wins at every size — the RTS/CTS "
               "handshake and the\nplan/path derivation ride the compute "
               "kernel instead of following it, and the\nhost never turns "
               "the crank between compute and communication.\n";
  return 0;
}
