// Concurrency scaling: N simultaneous rendezvous transfers between one
// sender/receiver pair, fifo (the pre-scheduler first-grabber-wins
// baseline) vs fair vbuf QoS + coalesced chunk acks. Not a paper table —
// the paper measures one transfer at a time; this bench backs the
// multi-transfer progress scheduler (see docs/CONCURRENCY.md) with
// aggregate-rate / tail-latency / control-traffic numbers.
//
// The workload is contiguous device memory on purpose: contiguous chunks
// stage straight through the vbuf pool (no pack kernels), so the pool is
// the bottleneck and the scheduler's arbitration is what shows. Strided
// workloads at these sizes are pack-kernel-limited and would measure the
// GPU, not the scheduler.
#include <algorithm>
#include <cstdio>
#include <iostream>
#include <vector>

#include "apps/reporting.hpp"
#include "bench_util.hpp"
#include "mpi/cluster.hpp"

namespace apps = mv2gnc::apps;
namespace bench = mv2gnc::bench;
namespace mpisim = mv2gnc::mpisim;
namespace core = mv2gnc::core;
namespace netsim = mv2gnc::netsim;
namespace sim = mv2gnc::sim;

namespace {

constexpr std::size_t kBytesPerTransfer = 512u << 10;  // 8 chunks each

struct PolicyResult {
  sim::SimTime elapsed = 0;
  /// Receiver wait-return time of each transfer, in posting order — the
  /// running max of the true completion times, exact at the tail (which
  /// is the quantile we report).
  std::vector<sim::SimTime> done;
  core::SchedStats sender;
  core::SchedStats receiver;
  std::uint64_t stall_fallbacks = 0;
  std::uint64_t retransmits = 0;
  double mean_mbps = 0;   // filled by the multi-seed wrapper
  double mean_ctrl = 0;

  double agg_mbps() const {
    const double total =
        static_cast<double>(done.size()) *
        static_cast<double>(kBytesPerTransfer);
    return total / sim::to_sec(elapsed) / 1e6;
  }
  double ctrl_per_transfer() const {
    return static_cast<double>(sender.ctrl_total() + receiver.ctrl_total()) /
           static_cast<double>(done.size());
  }
  double percentile_us(double p) const {
    std::vector<sim::SimTime> s = done;
    std::sort(s.begin(), s.end());
    const std::size_t idx = static_cast<std::size_t>(
        p * static_cast<double>(s.size() - 1) + 0.5);
    return static_cast<double>(s[idx]) / 1e3;
  }
};

mpisim::ClusterConfig make_config(bool fair, std::uint64_t seed) {
  mpisim::ClusterConfig cfg;
  cfg.rng_seed = seed;
  // A pool small enough that >= 4 concurrent transfers genuinely contend
  // (8 slots vs 8 chunks per transfer), fixed 64 KB chunks so both
  // policies move identical chunk counts, and a production-style timeout
  // short enough that starving a transfer for one timeout has its real
  // cost (retransmits, stall-watchdog pinned fallbacks).
  cfg.tunables.chunk_select = core::ChunkSelect::kFixed;
  cfg.tunables.vbuf_count = 8;
  cfg.tunables.recv_window = 4;
  cfg.tunables.rndv_timeout_ns = 300'000;
  cfg.tunables.rndv_max_retries = 100;
  // Seeded delivery jitter on the rendezvous control plane and chunk
  // fins (uniform [0, 50 us]): real links are not metronomes, and the
  // fifo baseline's pathologies (starvation into the stall watchdog,
  // timeout-driven retransmits) only cost anything when delivery times
  // vary. Deterministic for a fixed seed.
  netsim::FaultSpec ctrl;
  ctrl.jitter_ns = 50'000;
  for (int kind : {core::kRts, core::kCts, core::kChunkAck,
                   core::kChunkAckBatch, core::kChunkFin, core::kRndvDone,
                   core::kSendDone, core::kRtsAck, core::kSendDoneAck}) {
    cfg.faults.set_kind(kind, ctrl);
  }
  if (fair) {
    cfg.tunables.sched_policy = core::SchedPolicy::kFair;
    cfg.tunables.vbuf_reserve_per_transfer = 1;
    // ~half a 64 KB chunk's service time: acks of different transfers
    // bunch into batches, while each transfer's own credit still returns
    // well inside its pipeline window.
    cfg.tunables.ack_coalesce_window_ns = 30'000;
  }
  return cfg;
}

PolicyResult run_one(bool fair, int transfers, std::uint64_t seed) {
  mpisim::Cluster cluster(make_config(fair, seed));
  PolicyResult res;
  res.done.resize(static_cast<std::size_t>(transfers));
  cluster.run([&](mpisim::Context& ctx) {
    auto byte_t = mpisim::Datatype::byte();
    byte_t.commit();
    const int count = static_cast<int>(kBytesPerTransfer);
    std::vector<std::byte*> dev(static_cast<std::size_t>(transfers));
    for (auto& d : dev) {
      d = static_cast<std::byte*>(ctx.cuda->malloc(kBytesPerTransfer));
    }
    std::vector<mpisim::Request> reqs;
    reqs.reserve(static_cast<std::size_t>(transfers));
    for (int t = 0; t < transfers; ++t) {
      if (ctx.rank == 0) {
        reqs.push_back(ctx.comm.isend(dev[static_cast<std::size_t>(t)],
                                      count, byte_t, 1, t));
      } else {
        reqs.push_back(ctx.comm.irecv(dev[static_cast<std::size_t>(t)],
                                      count, byte_t, 0, t));
      }
    }
    for (int t = 0; t < transfers; ++t) {
      ctx.comm.wait(reqs[static_cast<std::size_t>(t)]);
      if (ctx.rank == 1) res.done[static_cast<std::size_t>(t)] = ctx.now();
    }
    ctx.comm.barrier();
    for (auto* d : dev) ctx.cuda->free(d);
  });
  // Rate denominator: time until the last transfer's data was delivered.
  // Cluster::elapsed() would also count the post-barrier finalize drain
  // (SEND_DONE stragglers, watchdog recovery), which is teardown, not
  // transfer throughput.
  res.elapsed = *std::max_element(res.done.begin(), res.done.end());
  res.sender = cluster.sched_stats(0);
  res.receiver = cluster.sched_stats(1);
  for (int r = 0; r < 2; ++r) {
    const core::RetryStats& rs = cluster.retry_stats(r);
    res.stall_fallbacks += rs.stall_fallbacks;
    res.retransmits += rs.total_retransmits();
  }
  return res;
}

// Three seeds per cell: jitter draws differ per seed, and single-seed
// deltas at these sizes are within the jitter noise. Rates and message
// counts are averaged; completion times are pooled for the percentiles.
PolicyResult run(bool fair, int transfers) {
  PolicyResult merged;
  double mbps = 0, ctrl = 0;
  const std::uint64_t seeds[] = {7, 11, 13};
  for (std::uint64_t seed : seeds) {
    PolicyResult r = run_one(fair, transfers, seed);
    merged.done.insert(merged.done.end(), r.done.begin(), r.done.end());
    merged.elapsed += r.elapsed;
    merged.stall_fallbacks += r.stall_fallbacks;
    merged.retransmits += r.retransmits;
    merged.receiver.ack_batches += r.receiver.ack_batches;
    mbps += r.agg_mbps();
    ctrl += r.ctrl_per_transfer();
  }
  merged.mean_mbps = mbps / 3.0;
  merged.mean_ctrl = ctrl / 3.0;
  return merged;
}

std::string fmt(double v, const char* spec = "%.1f") {
  char buf[32];
  std::snprintf(buf, sizeof(buf), spec, v);
  return buf;
}

}  // namespace

int main() {
  bench::banner(
      "Concurrency scaling: fifo vs fair vbuf QoS + coalesced acks",
      "multi-transfer extension of Section IV-B (docs/CONCURRENCY.md)");
  std::cout << "\n" << (kBytesPerTransfer >> 10)
            << " KB contiguous D-D transfers, one sender/receiver pair, "
               "8-slot vbuf pool,\n300 us rendezvous timer, uniform [0, 50 us] "
               "seeded delivery jitter (3 seeds).\nfair = fair QoS + 30 us "
               "ack coalescing; fifo = scheduler disabled (ablation "
               "baseline).\n";

  bench::JsonReport report("concurrency");
  apps::Table table(
      "aggregate rate (MB/s), p99 completion (us), ctrl msgs per transfer",
      {"concurrent", "fifo MB/s", "fair MB/s", "fifo p99", "fair p99",
       "fifo ctrl/x", "fair ctrl/x", "fifo rtx", "fair rtx"});
  for (int n : {1, 4, 16, 32}) {
    const PolicyResult fifo = run(/*fair=*/false, n);
    const PolicyResult fair = run(/*fair=*/true, n);
    table.add_row({std::to_string(n),
                   fmt(fifo.mean_mbps, "%.0f"),
                   fmt(fair.mean_mbps, "%.0f"),
                   fmt(fifo.percentile_us(0.99)),
                   fmt(fair.percentile_us(0.99)),
                   fmt(fifo.mean_ctrl),
                   fmt(fair.mean_ctrl),
                   std::to_string(fifo.retransmits),
                   std::to_string(fair.retransmits)});
    const std::string k = "n" + std::to_string(n) + "_";
    report.add(k + "fifo_agg_mbps", fifo.mean_mbps);
    report.add(k + "fair_agg_mbps", fair.mean_mbps);
    report.add(k + "fifo_p50_us", fifo.percentile_us(0.50));
    report.add(k + "fair_p50_us", fair.percentile_us(0.50));
    report.add(k + "fifo_p99_us", fifo.percentile_us(0.99));
    report.add(k + "fair_p99_us", fair.percentile_us(0.99));
    report.add(k + "fifo_ctrl_per_transfer", fifo.mean_ctrl);
    report.add(k + "fair_ctrl_per_transfer", fair.mean_ctrl);
    report.add(k + "fifo_stall_fallbacks",
               static_cast<double>(fifo.stall_fallbacks));
    report.add(k + "fair_stall_fallbacks",
               static_cast<double>(fair.stall_fallbacks));
    report.add(k + "fair_ack_batches",
               static_cast<double>(fair.receiver.ack_batches));
    report.add(k + "fifo_retransmits",
               static_cast<double>(fifo.retransmits));
    report.add(k + "fair_retransmits",
               static_cast<double>(fair.retransmits));
  }
  table.print(std::cout);
  report.write_and_note();
  std::cout << "\nExpected: a solo transfer pays a few percent for the "
               "bounded pipeline depth (fifo prefetches the whole pool; "
               "fair opens at the receive window — the price of the "
               "concurrency protection); near-identical at moderate "
               "concurrency; from 16 concurrent on, fifo starves late "
               "transfers past the rendezvous timeout and pays in "
               "retransmitted chunks (rtx) — fair QoS keeps every "
               "transfer under the timer, finishing higher-rate and with "
               "a shorter tail. Coalescing cuts control messages per "
               "transfer throughout; the credit valve (half-window "
               "flush, immediate when solo) keeps the batching delay off "
               "the critical path.\n";
  return 0;
}
