// Seeded chaos soak: the fault matrix (lossy fabric + lossy IPC control
// planes, rank stall/skew, optional crash-stop) crossed with rpn {1,2,4}
// and the flat/hier/auto collective algorithms. Every cell asserts the
// cluster's liveness contract — each surviving rank completes its workload
// or raises a clean RequestError; nobody blocks forever — plus quiesced
// vbuf pools and zero leaked CUDA-IPC mappings. Lossy-only cells (no
// crash, generous retry budget) must additionally produce bit-correct
// reductions: chaos inside the retransmit budget is invisible to the
// application.
//
// `--smoke` runs one seed per cell (the CI chaos_smoke target); the full
// sweep (scripts/run_chaos_sweep.sh) runs three.
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "apps/reporting.hpp"
#include "bench_util.hpp"
#include "mpi/cluster.hpp"

namespace bench = mv2gnc::bench;
namespace apps = mv2gnc::apps;
namespace core = mv2gnc::core;
namespace mpisim = mv2gnc::mpisim;
namespace netsim = mv2gnc::netsim;
namespace sim = mv2gnc::sim;

namespace {

constexpr int kRanks = 4;

const char* select_name(core::CollSelect s) {
  switch (s) {
    case core::CollSelect::kFlat: return "flat";
    case core::CollSelect::kHier: return "hier";
    default: return "auto";
  }
}

void fault_rendezvous_control(netsim::FaultModel& fm, double drop_send,
                              double drop_imm) {
  netsim::FaultSpec ctrl;
  ctrl.drop_send = drop_send;
  for (int kind : {core::kRts, core::kCts, core::kChunkAck, core::kRndvDone,
                   core::kSendDone, core::kRtsAck, core::kSendDoneAck}) {
    fm.set_kind(kind, ctrl);
  }
  netsim::FaultSpec data;
  data.drop_imm = drop_imm;
  fm.set_kind(core::kChunkFin, data);
}

struct CellResult {
  bool alive = true;        // every surviving rank finished its body
  bool correct = true;      // lossy-only cells: reductions bit-correct
  bool quiesced = true;     // vbuf audit clean, no leaked IPC mappings
  int aborted_ranks = 0;    // survivors that raised a clean RequestError
  std::uint64_t faults = 0;
  std::uint64_t retransmits = 0;
  sim::SimTime elapsed = 0;
};

CellResult run_cell(std::size_t rpn, core::CollSelect select,
                    std::uint64_t seed, bool crash) {
  mpisim::ClusterConfig cfg;
  cfg.ranks = kRanks;
  cfg.rng_seed = seed;
  cfg.tunables.ranks_per_node = rpn;
  cfg.tunables.coll_select = select;
  cfg.tunables.rndv_timeout_ns = 200'000;
  // A crash cell wants a tight budget (fail fast, abort cleanly); a lossy
  // cell wants one deep enough that no transfer ever fails permanently.
  cfg.tunables.rndv_max_retries = crash ? 3 : 25;
  cfg.tunables.rank_skew_ns = 10'000;
  cfg.tunables.rank_stall_prob = 0.05;
  cfg.tunables.rank_stall_ns = 2'000;
  fault_rendezvous_control(cfg.faults, 0.02, 0.0);
  if (rpn > 1) fault_rendezvous_control(cfg.ipc_faults, 0.04, 0.02);
  if (crash) cfg.crash_at = {{kRanks - 1, sim::SimTime{1'500'000}}};

  const int count = 16'384;
  std::vector<std::vector<double>> in(kRanks), out(kRanks);
  for (int r = 0; r < kRanks; ++r) {
    auto& v = in[static_cast<std::size_t>(r)];
    v.resize(static_cast<std::size_t>(count));
    for (int i = 0; i < count; ++i) {
      v[static_cast<std::size_t>(i)] = r + i % 7;
    }
    out[static_cast<std::size_t>(r)].assign(static_cast<std::size_t>(count),
                                            0.0);
  }
  std::vector<int> finished(kRanks, 0);
  std::vector<std::string> errors(kRanks);
  CellResult res;
  mpisim::Cluster cluster(cfg);
  cluster.run([&](mpisim::Context& ctx) {
    const auto rank = static_cast<std::size_t>(ctx.rank);
    try {
      for (int it = 0; it < 10; ++it) {
        ctx.comm.allreduce_sum(in[rank].data(), out[rank].data(), count);
      }
      ctx.comm.barrier();
    } catch (const mpisim::RequestError& e) {
      errors[rank] = e.what();
    }
    if (ctx.cuda->open_ipc_handles() != 0) res.quiesced = false;
    finished[rank] = 1;
  });
  res.elapsed = cluster.elapsed();
  const int crashed = crash ? kRanks - 1 : -1;
  for (int r = 0; r < kRanks; ++r) {
    const auto rank = static_cast<std::size_t>(r);
    if (r == crashed) continue;  // a crash-stop abandons its checkouts
    if (finished[rank] == 0) res.alive = false;
    if (!errors[rank].empty()) ++res.aborted_ranks;
    if (!cluster.vbuf_audit(r).empty() ||
        cluster.vbufs_in_use(r) != cluster.graveyard_slots(r)) {
      res.quiesced = false;
    }
    const mpisim::Cluster::FaultStats fs = cluster.fault_stats(r);
    res.faults += fs.fabric.total() + fs.ipc.total();
    const auto& rs = cluster.retry_stats(r);
    res.retransmits += rs.rts_retransmits + rs.chunk_retransmits +
                       rs.cts_resent + rs.acks_resent + rs.done_resent +
                       rs.send_done_retransmits;
  }
  if (!crash) {
    if (res.aborted_ranks != 0) res.correct = false;
    for (int r = 0; r < kRanks && res.correct; ++r) {
      for (int i = 0; i < count; i += 499) {
        double want = 0.0;
        for (int s = 0; s < kRanks; ++s) want += s + i % 7;
        if (out[static_cast<std::size_t>(r)][static_cast<std::size_t>(i)] !=
            want) {
          res.correct = false;
          break;
        }
      }
    }
  }
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  bench::banner("Chaos soak: fault matrix x rpn {1,2,4} x flat/hier/auto",
                "liveness contract of the unified fault domain (no paper "
                "figure)");
  bench::JsonReport report("chaos_soak");
  apps::Table table("Chaos matrix", {"rpn", "coll", "seed", "mode", "result",
                                     "aborts", "faults", "rexmits",
                                     "virt (us)"});
  const std::vector<std::uint64_t> seeds =
      smoke ? std::vector<std::uint64_t>{1} : std::vector<std::uint64_t>{1, 2, 3};
  int violations = 0;
  std::uint64_t total_faults = 0;
  for (std::size_t rpn : {1u, 2u, 4u}) {
    for (core::CollSelect select :
         {core::CollSelect::kFlat, core::CollSelect::kHier,
          core::CollSelect::kAuto}) {
      for (std::uint64_t seed : seeds) {
        for (bool crash : {false, true}) {
          const CellResult res =
              run_cell(rpn, select, 100 * rpn + 10 * seed + crash, crash);
          const bool ok = res.alive && res.correct && res.quiesced;
          if (!ok) ++violations;
          total_faults += res.faults;
          std::string verdict = !res.alive      ? "HUNG"
                                : !res.correct  ? "WRONG"
                                : !res.quiesced ? "LEAKED"
                                : crash         ? "clean-abort"
                                                : "completed";
          table.add_row({std::to_string(rpn), select_name(select),
                         std::to_string(seed), crash ? "crash" : "lossy",
                         verdict, std::to_string(res.aborted_ranks),
                         std::to_string(res.faults),
                         std::to_string(res.retransmits),
                         apps::format_us(res.elapsed)});
        }
      }
    }
  }
  table.print(std::cout);
  report.add("violations", violations);
  report.add("total_faults", static_cast<double>(total_faults));
  report.write_and_note();
  if (total_faults == 0) {
    std::cout << "\nerror: the matrix injected no faults — the sweep is "
                 "vacuous\n";
    return 1;
  }
  if (violations != 0) {
    std::cout << "\nerror: " << violations
              << " cell(s) violated the liveness contract\n";
    return 1;
  }
  std::cout << "\nExpected: every lossy cell completes with bit-correct "
               "reductions; every\ncrash cell ends in clean aborts on the "
               "survivors. Zero hangs, zero leaks,\nzero silent corruption "
               "— the fault plane is exercised (faults > 0), the\n"
               "application never sees chaos that stays within the "
               "retransmit budget.\n";
  return violations == 0 ? 0 : 1;
}
