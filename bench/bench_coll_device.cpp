// Device-buffer allreduce: sync-staged vs the sliced pipeline
// (docs/COLLECTIVES.md, "Device-resident buffers").
//
// Every rank hands allreduce a pair of device-resident vectors and the
// bench times the two schedules the coll_device knob selects:
//
//   staged     full-size D2H, the host butterfly, full-size H2D — every
//              leg exposed (the zero-overlap baseline).
//   pipelined  the vector is cut into slices; slice k's D2H overlaps
//              slice k-1's Rabenseifner wire leg (on-device folds) while
//              earlier slices' write-backs drain on their own stream. At
//              rpn > 1 the intra-node rings stay device-resident over the
//              IPC peer path.
//
// Swept across the paper's large-message range at 1 and 2 ranks per node.
// The bench asserts the win it exists to demonstrate — pipelined beats
// staged from 256 KB up at both rpn — plus result correctness against the
// host-computed reduction and a non-vacuous sweep (slices were actually
// cut, reduction kernels actually launched).
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "apps/reporting.hpp"
#include "bench_util.hpp"
#include "mpi/cluster.hpp"
#include "mpi/coll.hpp"

namespace bench = mv2gnc::bench;
namespace apps = mv2gnc::apps;
namespace core = mv2gnc::core;
namespace mpisim = mv2gnc::mpisim;
namespace sim = mv2gnc::sim;

namespace {

constexpr int kRanks = 8;

struct RunResult {
  sim::SimTime elapsed = 0;   // virtual time of `iters` allreduces, rank 0
  bool correct = false;       // device result == host-computed reduction
  std::uint64_t device_calls = 0;
  std::uint64_t pipelined_calls = 0;
  std::uint64_t slices = 0;
  std::uint64_t reduce_kernels = 0;
  std::uint64_t bytes_peer = 0;
};

RunResult run(std::size_t bytes, int rpn, core::CollDevice mode, int iters) {
  mpisim::ClusterConfig cfg;
  cfg.ranks = kRanks;
  cfg.tunables.ranks_per_node = static_cast<std::size_t>(rpn);
  cfg.tunables.coll_device = mode;
  const int count = static_cast<int>(bytes / sizeof(double));
  RunResult res;
  bool all_correct = true;
  mpisim::Cluster cluster(cfg);
  cluster.run([&](mpisim::Context& ctx) {
    std::vector<double> in(static_cast<std::size_t>(count));
    for (int i = 0; i < count; ++i) {
      in[static_cast<std::size_t>(i)] =
          static_cast<double>(ctx.rank + 1) * static_cast<double>(i % 13 + 1);
    }
    auto* din = static_cast<double*>(ctx.cuda->malloc(bytes));
    auto* dout = static_cast<double*>(ctx.cuda->malloc(bytes));
    ctx.cuda->memcpy(din, in.data(), bytes);
    ctx.comm.barrier();
    const sim::SimTime t0 = ctx.now();
    for (int it = 0; it < iters; ++it) {
      ctx.comm.allreduce_sum(din, dout, count);
    }
    ctx.comm.barrier();
    if (ctx.rank == 0) res.elapsed = ctx.now() - t0;
    std::vector<double> got(static_cast<std::size_t>(count));
    ctx.cuda->memcpy(got.data(), dout, bytes);
    for (int i = 0; i < count; ++i) {
      // Sum over ranks r of (r+1) * (i%13+1): exact in doubles.
      const double want = static_cast<double>(kRanks * (kRanks + 1) / 2) *
                          static_cast<double>(i % 13 + 1);
      if (got[static_cast<std::size_t>(i)] != want) {
        all_correct = false;
        break;
      }
    }
    ctx.cuda->free(din);
    ctx.cuda->free(dout);
  });
  res.correct = all_correct;
  for (int r = 0; r < kRanks; ++r) {
    const auto& ar = cluster.coll_stats(r).allreduce;
    res.device_calls += ar.device_calls;
    res.pipelined_calls += ar.device_pipelined;
    res.slices += ar.device_slices;
    res.reduce_kernels += ar.reduce_kernels;
    res.bytes_peer += ar.bytes_peer;
  }
  return res;
}

// One pipelined run with the device-collective counter table.
void show_device_stats(std::size_t bytes, int rpn, int iters) {
  mpisim::ClusterConfig cfg;
  cfg.ranks = kRanks;
  cfg.tunables.ranks_per_node = static_cast<std::size_t>(rpn);
  cfg.tunables.coll_device = core::CollDevice::kPipelined;
  const int count = static_cast<int>(bytes / sizeof(double));
  mpisim::Cluster cluster(cfg);
  cluster.run([&](mpisim::Context& ctx) {
    std::vector<double> in(static_cast<std::size_t>(count), 1.0);
    auto* din = static_cast<double*>(ctx.cuda->malloc(bytes));
    auto* dout = static_cast<double*>(ctx.cuda->malloc(bytes));
    ctx.cuda->memcpy(din, in.data(), bytes);
    for (int it = 0; it < iters; ++it) {
      ctx.comm.allreduce_sum(din, dout, count);
    }
    ctx.cuda->free(din);
    ctx.cuda->free(dout);
  });
  std::cout << "\nDevice-collective counters (pipelined, "
            << apps::format_bytes(bytes) << " x " << iters << ", rpn " << rpn
            << "):\n";
  cluster.print_stats(std::cout);
}

std::string peer_mb(std::uint64_t bytes) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", static_cast<double>(bytes) / 1e6);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::string(argv[1]) == "--smoke";
  bench::banner("Device-buffer allreduce: sync-staged vs sliced pipeline",
                "the paper's pipelined-through-host design applied to "
                "collectives (docs/COLLECTIVES.md)");
  const std::vector<std::size_t> sizes =
      smoke ? std::vector<std::size_t>{65536, 262144}
            : std::vector<std::size_t>{65536, 262144, 1048576, 4194304};
  const int iters = smoke ? 2 : 3;
  bench::JsonReport report("coll_device");
  apps::Table table("Allreduce on device buffers, 8 ranks (us per call)",
                    {"size", "rpn", "staged (us)", "pipelined (us)",
                     "improvement", "slices", "peer-MB"});
  bool ok = true;
  for (int rpn : {1, 2}) {
    for (std::size_t s : sizes) {
      const RunResult st = run(s, rpn, core::CollDevice::kStaged, iters);
      const RunResult pi = run(s, rpn, core::CollDevice::kPipelined, iters);
      table.add_row(
          {apps::format_bytes(s), std::to_string(rpn),
           apps::format_us(st.elapsed / iters),
           apps::format_us(pi.elapsed / iters),
           apps::format_improvement(static_cast<double>(st.elapsed),
                                    static_cast<double>(pi.elapsed)),
           std::to_string(pi.slices / static_cast<std::uint64_t>(iters)),
           peer_mb(pi.bytes_peer)});
      const std::string key =
          std::to_string(s) + "_rpn" + std::to_string(rpn);
      report.add("staged_us_" + key,
                 static_cast<double>(st.elapsed / iters) / 1000.0);
      report.add("pipelined_us_" + key,
                 static_cast<double>(pi.elapsed / iters) / 1000.0);
      report.add("pipelined_slices_" + key, static_cast<double>(pi.slices));
      report.add("pipelined_peer_mb_" + key,
                 static_cast<double>(pi.bytes_peer) / 1e6);
      // In-bench asserts — the claims this bench exists to back:
      // (1) both schedules produce the host-computed reduction, bit-exact;
      if (!st.correct || !pi.correct) {
        std::cout << "FAIL: wrong allreduce result at " << s << " B rpn "
                  << rpn << " (staged " << st.correct << ", pipelined "
                  << pi.correct << ")\n";
        ok = false;
      }
      // (2) the pipeline beats the zero-overlap staged schedule from
      //     256 KB up, at both 1 and 2 ranks per node;
      if (s >= 262144 && pi.elapsed >= st.elapsed) {
        std::cout << "FAIL: pipelined (" << pi.elapsed
                  << " ns) did not beat staged (" << st.elapsed << " ns) at "
                  << s << " B rpn " << rpn << "\n";
        ok = false;
      }
      // (3) the sweep is not vacuous: the pipelined runs actually took the
      //     device path, cut slices, and launched reduction kernels.
      if (pi.device_calls == 0 || pi.pipelined_calls == 0 ||
          pi.slices == 0 || pi.reduce_kernels == 0) {
        std::cout << "FAIL: vacuous sweep at " << s << " B rpn " << rpn
                  << " (calls " << pi.device_calls << ", pipelined "
                  << pi.pipelined_calls << ", slices " << pi.slices
                  << ", reduce-kernels " << pi.reduce_kernels << ")\n";
        ok = false;
      }
      // (4) ... and at rpn 2 the intra-node legs really stayed on the
      //     device-direct peer path.
      if (rpn == 2 && pi.bytes_peer == 0) {
        std::cout << "FAIL: no device-direct peer bytes at " << s
                  << " B rpn 2\n";
        ok = false;
      }
    }
  }
  table.print(std::cout);
  show_device_stats(smoke ? 262144 : 1048576, 2, iters);
  report.write_and_note();
  if (!ok) {
    std::cout << "\nerror: device-collective win assertions failed\n";
    return 1;
  }
  std::cout << "\nExpected: the sliced pipeline wins from 256 KB up — each "
               "slice's PCIe legs hide\nbehind its neighbours' wire legs, "
               "the Rabenseifner exchange moves 2(1-1/p)\nbytes instead of "
               "the butterfly's log2(p), and at rpn 2 the intra-node rings"
               "\npeer-copy device memory instead of bouncing through the "
               "host.\n";
  return 0;
}
