// Shared helpers for the paper-reproduction benchmark binaries.
#pragma once

#include <cstdlib>
#include <fstream>
#include <functional>
#include <iostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "cuda/runtime.hpp"
#include "gpu/device.hpp"
#include "sim/engine.hpp"

namespace mv2gnc::bench {

/// Run `body` as a single simulated process against one Tesla-C2050-class
/// device (for the single-GPU measurements of §I-A and Figure 2).
inline void run_single_gpu(
    const std::function<void(sim::Engine&, cusim::CudaContext&)>& body,
    std::size_t device_memory = 3ull << 30) {
  sim::Engine engine;
  gpu::MemoryRegistry registry;
  gpu::Device device(engine, registry, 0, gpu::GpuCostModel::tesla_c2050(),
                     device_memory);
  cusim::CudaContext ctx(device);
  engine.spawn("bench", [&] { body(engine, ctx); });
  engine.run();
}

/// Standard benchmark banner.
inline void banner(const std::string& what, const std::string& paper_ref) {
  std::cout << "\n######################################################\n"
            << "# " << what << "\n"
            << "# reproduces: " << paper_ref << "\n"
            << "# (virtual time on the simulated C2050/QDR testbed)\n"
            << "######################################################\n";
}

/// Machine-readable benchmark results. Each binary accumulates flat
/// (key, value) metrics; when the MV2GNC_BENCH_JSON_DIR environment
/// variable names a directory, write() emits BENCH_<name>.json there so
/// scripts/run_benches.sh (and CI trend tooling) can diff runs without
/// scraping the ASCII tables. Without the variable, write() is a no-op.
class JsonReport {
 public:
  explicit JsonReport(std::string name) : name_(std::move(name)) {}

  void add(const std::string& key, double value) {
    metrics_.emplace_back(key, value);
  }

  /// Returns the path written, or "" when reporting is disabled.
  std::string write() const {
    const char* dir = std::getenv("MV2GNC_BENCH_JSON_DIR");
    if (dir == nullptr || *dir == '\0') return {};
    const std::string path = std::string(dir) + "/BENCH_" + name_ + ".json";
    std::ofstream out(path);
    if (!out) {
      std::cerr << "warning: cannot write " << path << "\n";
      return {};
    }
    out << "{\n  \"bench\": \"" << name_ << "\",\n  \"metrics\": {";
    for (std::size_t i = 0; i < metrics_.size(); ++i) {
      std::ostringstream v;  // default precision; no locale surprises
      v << metrics_[i].second;
      out << (i ? "," : "") << "\n    \"" << metrics_[i].first
          << "\": " << v.str();
    }
    out << "\n  }\n}\n";
    return path;
  }

  /// write() plus the standard one-line stdout pointer every benchmark
  /// prints ("json metrics: <path>"); silent when reporting is disabled.
  /// Returns the path written, or "" when disabled.
  std::string write_and_note() const {
    const std::string path = write();
    if (!path.empty()) std::cout << "\njson metrics: " << path << "\n";
    return path;
  }

 private:
  std::string name_;
  std::vector<std::pair<std::string, double>> metrics_;
};

/// Append an engine's execution-throughput counters under `prefix`: events
/// executed, wall-clock seconds spent inside run(), events per wall second
/// and wall seconds per simulated virtual second. Call while the Cluster
/// (or Engine) that ran the cell is still alive.
inline void add_engine_throughput(JsonReport& report, const std::string& prefix,
                                  const sim::Engine& engine) {
  report.add(prefix + "_events",
             static_cast<double>(engine.events_executed()));
  report.add(prefix + "_wall_s", engine.run_wall_seconds());
  report.add(prefix + "_events_per_s", engine.events_per_wall_second());
  report.add(prefix + "_wall_per_virtual_s", engine.wall_per_virtual_second());
}

}  // namespace mv2gnc::bench
