// Shared helpers for the paper-reproduction benchmark binaries.
#pragma once

#include <functional>
#include <iostream>
#include <string>

#include "cuda/runtime.hpp"
#include "gpu/device.hpp"
#include "sim/engine.hpp"

namespace mv2gnc::bench {

/// Run `body` as a single simulated process against one Tesla-C2050-class
/// device (for the single-GPU measurements of §I-A and Figure 2).
inline void run_single_gpu(
    const std::function<void(sim::Engine&, cusim::CudaContext&)>& body,
    std::size_t device_memory = 3ull << 30) {
  sim::Engine engine;
  gpu::MemoryRegistry registry;
  gpu::Device device(engine, registry, 0, gpu::GpuCostModel::tesla_c2050(),
                     device_memory);
  cusim::CudaContext ctx(device);
  engine.spawn("bench", [&] { body(engine, ctx); });
  engine.run();
}

/// Standard benchmark banner.
inline void banner(const std::string& what, const std::string& paper_ref) {
  std::cout << "\n######################################################\n"
            << "# " << what << "\n"
            << "# reproduces: " << paper_ref << "\n"
            << "# (virtual time on the simulated C2050/QDR testbed)\n"
            << "######################################################\n";
}

}  // namespace mv2gnc::bench
