// Shared driver for paper Tables II and III: Stencil2D execution times of
// the Def and MV2-GPU-NC variants across the four process grids.
//
// Grid geometry note: the paper uses 64K x 1K / 1K x 64K tiles for the
// 1x8 / 8x1 grids; we use 32K x 2K / 2K x 32K so the eight-rank simulation
// fits this host's RAM while keeping the per-process point count equal to
// the 8K x 8K grids (64M points) as in the paper. The east-west halo
// (32K x 4 B = 128 KB single precision) still exceeds the 64 KB
// pipeline-activation threshold, which is what the paper's size choice was
// for. See EXPERIMENTS.md.
#pragma once

#include <iostream>
#include <string>
#include <vector>

#include "apps/reporting.hpp"
#include "apps/stencil2d.hpp"
#include "bench_util.hpp"

namespace mv2gnc::bench {

struct GridCase {
  const char* label;         // "1x8 (32k x 1k)"
  int pr, pc, rows, cols;
  double paper_improvement;  // percent, from the paper's table
};

inline double run_case(const GridCase& g, bool dp,
                       apps::StencilConfig::Variant variant,
                       int iterations) {
  apps::StencilConfig cfg;
  cfg.proc_rows = g.pr;
  cfg.proc_cols = g.pc;
  cfg.local_rows = g.rows;
  cfg.local_cols = g.cols;
  cfg.iterations = iterations;
  cfg.double_precision = dp;
  cfg.variant = variant;
  mpisim::Cluster cluster(mpisim::ClusterConfig{.ranks = cfg.ranks()});
  double seconds = 0;
  cluster.run([&](mpisim::Context& ctx) {
    const auto r = apps::run_stencil(ctx, cfg);
    if (ctx.rank == 0) seconds = r.seconds;
  });
  return seconds;
}

inline int run_stencil_table(bool dp, const char* table_name,
                             const char* paper_ref) {
  banner(std::string("Stencil2D execution times, ") +
             (dp ? "double" : "single") + " precision",
         paper_ref);
  const std::vector<GridCase> grids = {
      {"1x8 (32k x 2k)", 1, 8, 32768, 2048, dp ? 39.0 : 42.0},
      {"8x1 (2k x 32k)", 8, 1, 2048, 32768, dp ? 22.0 : 19.0},
      {"2x4 (8k x 8k)", 2, 4, 8192, 8192, dp ? 26.0 : 27.0},
      {"4x2 (8k x 8k)", 4, 2, 8192, 8192, dp ? 21.0 : 22.0},
  };
  const int iterations = 13;
  apps::Table table(std::string(table_name) + " (" +
                        std::to_string(iterations) + " iterations)",
                    {"grid (matrix/process)", "Stencil2D-Def (s)",
                     "Stencil2D-MV2-GPU-NC (s)", "improvement",
                     "paper improvement"});
  for (const auto& g : grids) {
    const double def_s =
        run_case(g, dp, apps::StencilConfig::Variant::kDef, iterations);
    const double nc_s =
        run_case(g, dp, apps::StencilConfig::Variant::kMv2GpuNc, iterations);
    char defbuf[32], ncbuf[32], paper[16];
    std::snprintf(defbuf, sizeof(defbuf), "%.6f", def_s);
    std::snprintf(ncbuf, sizeof(ncbuf), "%.6f", nc_s);
    std::snprintf(paper, sizeof(paper), "%.0f%%", g.paper_improvement);
    table.add_row({g.label, defbuf, ncbuf,
                   apps::format_improvement(def_s, nc_s), paper});
  }
  table.print(std::cout);
  std::cout << "\nExpected ordering: 1x8 (all-noncontiguous) gains most,\n"
               "8x1 (all-contiguous, pipelining only) gains least,\n"
               "2x4 gains more than 4x2 (60% vs 40% non-contiguous).\n";
  return 0;
}

}  // namespace mv2gnc::bench
