// Ablation: where does the win come from?
//
// The paper attributes the improvement to two mechanisms — (1) offloading
// datatype pack/unpack to the GPU and (2) pipelining all transfer stages
// (§V-A lists exactly these two reasons). This bench switches each off
// independently via the library tunables and reports the 2x2 matrix for a
// range of vector sizes.
#include <iostream>
#include <vector>

#include "apps/reporting.hpp"
#include "apps/vector_bench.hpp"
#include "bench_util.hpp"

namespace bench = mv2gnc::bench;
namespace apps = mv2gnc::apps;
namespace mpisim = mv2gnc::mpisim;
namespace sim = mv2gnc::sim;

namespace {

sim::SimTime run(bool offload, bool pipeline, std::size_t rows) {
  mpisim::ClusterConfig cfg;
  cfg.tunables.gpu_offload = offload;
  cfg.tunables.pipelining = pipeline;
  return apps::measure_vector_latency(apps::VectorMethod::kMv2GpuNc, rows, 3,
                                      cfg);
}

}  // namespace

int main() {
  bench::banner("Design ablation: GPU offload x pipelining",
                "Section V-A (the two stated sources of improvement)");
  apps::Table table("MV2-GPU-NC one-way vector latency (us)",
                    {"size", "neither", "offload only", "pipeline only",
                     "offload+pipeline"});
  for (std::size_t bytes :
       {256u << 10, 1u << 20, 4u << 20}) {
    const std::size_t rows = bytes / 4;
    table.add_row({apps::format_bytes(bytes),
                   apps::format_us(run(false, false, rows)),
                   apps::format_us(run(true, false, rows)),
                   apps::format_us(run(false, true, rows)),
                   apps::format_us(run(true, true, rows))});
  }
  table.print(std::cout);
  std::cout << "\nExpected: each mechanism helps alone; together they give"
               " the full win.\n";
  return 0;
}
