// Intra-node transport comparison: the same Figure-5 vector layouts moved
// between two co-located GPUs over (a) the GPU-IPC fast path (peer D2D
// copies, no HCA) and (b) the same node pair forced onto the fabric
// (transport_select=fabric), which is also what the transfer costs when
// the ranks live on different nodes. The gap is the collapsed pipeline:
// D2D pack -> peer copy -> D2D unpack versus pack -> D2H -> RDMA -> H2D ->
// unpack.
#include <iostream>
#include <vector>

#include "apps/reporting.hpp"
#include "apps/vector_bench.hpp"
#include "bench_util.hpp"

namespace bench = mv2gnc::bench;
namespace apps = mv2gnc::apps;
namespace core = mv2gnc::core;
namespace mpisim = mv2gnc::mpisim;
namespace sim = mv2gnc::sim;
using apps::VectorMethod;

namespace {

mpisim::ClusterConfig colocated(core::TransportSelect select) {
  mpisim::ClusterConfig cfg;
  cfg.tunables.ranks_per_node = 2;
  cfg.tunables.transport_select = select;
  return cfg;
}

void sweep(bench::JsonReport& report, const char* title,
           const std::vector<std::size_t>& sizes, int iterations) {
  apps::Table table(title, {"size", "forced fabric (us)",
                            "intra-node IPC (us)", "improvement"});
  for (std::size_t s : sizes) {
    const std::size_t rows = s / 4;
    const sim::SimTime fabric = apps::measure_vector_latency(
        VectorMethod::kMv2GpuNc, rows, iterations,
        colocated(core::TransportSelect::kFabric));
    const sim::SimTime ipc = apps::measure_vector_latency(
        VectorMethod::kMv2GpuNc, rows, iterations,
        colocated(core::TransportSelect::kAuto));
    table.add_row({apps::format_bytes(s), apps::format_us(fabric),
                   apps::format_us(ipc),
                   apps::format_improvement(static_cast<double>(fabric),
                                            static_cast<double>(ipc))});
    report.add("fabric_us_" + std::to_string(s),
               static_cast<double>(fabric) / 1000.0);
    report.add("ipc_us_" + std::to_string(s),
               static_cast<double>(ipc) / 1000.0);
  }
  table.print(std::cout);
}

// One representative transfer with the per-transport counter table, so the
// split between the HCA and the in-node channel is visible at a glance.
void show_transport_stats() {
  mpisim::Cluster cluster(colocated(core::TransportSelect::kAuto));
  cluster.run([](mpisim::Context& ctx) {
    auto col = mpisim::Datatype::vector(262144, 1, 2,
                                        mpisim::Datatype::int32());
    col.commit();
    const std::size_t span = static_cast<std::size_t>(col.extent()) + 64;
    auto* dev = static_cast<std::byte*>(ctx.cuda->malloc(span));
    if (ctx.rank == 0) ctx.comm.send(dev, 1, col, 1, 0);
    else ctx.comm.recv(dev, 1, col, 0, 0);
    ctx.cuda->free(dev);
  });
  std::cout << "\nPer-transport counters (1 MB vector, 2 ranks on 1 node):\n";
  cluster.print_stats(std::cout);
}

}  // namespace

int main() {
  bench::banner(
      "Intra-node GPU-IPC transport vs forced fabric (2 ranks, 1 node)",
      "Figure 5 layouts over the PR's pluggable transport seam");
  bench::JsonReport report("transport");
  sweep(report, "Small vectors", {1024, 4096}, 5);
  sweep(report, "Large vectors", {65536, 262144, 1048576, 4194304}, 3);
  show_transport_stats();
  report.write_and_note();
  std::cout << "\nExpected: the IPC fast path wins at every size — control "
               "messages skip the\nHCA and payload moves as one peer D2D "
               "copy instead of staging through host\nmemory.\n";
  return 0;
}
