// Topology-aware collectives: the topology-oblivious baseline (flat
// single-level algorithms with every hop on the fabric, as in the
// one-HCA-per-message era) versus the two-level hierarchical variants
// that run the intra-node phases over the node's IPC channel and stripe
// the inter-node leg across the members' HCAs. 8 ranks, blocked onto
// nodes at 2 and 4 ranks per node, swept across the Figure-5 message
// sizes. Same framing as bench_transport: "forced fabric" vs IPC-aware.
#include <iostream>
#include <string>
#include <vector>

#include "apps/reporting.hpp"
#include "bench_util.hpp"
#include "mpi/cluster.hpp"

namespace bench = mv2gnc::bench;
namespace apps = mv2gnc::apps;
namespace core = mv2gnc::core;
namespace mpisim = mv2gnc::mpisim;
namespace sim = mv2gnc::sim;

namespace {

constexpr int kRanks = 8;

mpisim::ClusterConfig config(int rpn, core::CollSelect coll,
                             core::TransportSelect transport) {
  mpisim::ClusterConfig cfg;
  cfg.ranks = kRanks;
  cfg.tunables.ranks_per_node = static_cast<std::size_t>(rpn);
  cfg.tunables.coll_select = coll;
  cfg.tunables.transport_select = transport;
  return cfg;
}

enum class Op { kAllreduce, kAllgather };

// Virtual time for `iters` back-to-back collectives of `bytes` per rank.
sim::SimTime measure(Op op, std::size_t bytes, int rpn,
                     core::CollSelect coll, core::TransportSelect transport,
                     int iters) {
  mpisim::Cluster cluster(config(rpn, coll, transport));
  cluster.run([&](mpisim::Context& ctx) {
    if (op == Op::kAllreduce) {
      const int count = static_cast<int>(bytes / sizeof(double));
      std::vector<double> in(static_cast<std::size_t>(count),
                             static_cast<double>(ctx.rank));
      std::vector<double> out(static_cast<std::size_t>(count));
      for (int i = 0; i < iters; ++i) {
        ctx.comm.allreduce_sum(in.data(), out.data(), count);
      }
    } else {
      auto dt = mpisim::Datatype::byte();
      dt.commit();
      const int count = static_cast<int>(bytes);
      std::vector<std::byte> in(bytes, std::byte{0x5A});
      std::vector<std::byte> out(bytes * kRanks);
      for (int i = 0; i < iters; ++i) {
        ctx.comm.allgather(in.data(), count, dt, out.data());
      }
    }
  });
  return cluster.elapsed();
}

void sweep(bench::JsonReport& report, Op op, const char* name, int rpn,
           const std::vector<std::size_t>& sizes) {
  apps::Table table(std::string(name) + ", 8 ranks, " + std::to_string(rpn) +
                        " ranks/node",
                    {"size", "flat, fabric-only (us)", "two-level (us)",
                     "improvement"});
  for (std::size_t s : sizes) {
    const int iters = s >= (1u << 20) ? 2 : 4;
    const sim::SimTime flat = measure(op, s, rpn, core::CollSelect::kFlat,
                                      core::TransportSelect::kFabric, iters);
    const sim::SimTime hier = measure(op, s, rpn, core::CollSelect::kHier,
                                      core::TransportSelect::kAuto, iters);
    table.add_row({apps::format_bytes(s), apps::format_us(flat),
                   apps::format_us(hier),
                   apps::format_improvement(static_cast<double>(flat),
                                            static_cast<double>(hier))});
    const std::string key =
        std::string(name) + "_rpn" + std::to_string(rpn) + "_" +
        std::to_string(s);
    report.add("flat_us_" + key, static_cast<double>(flat) / 1000.0);
    report.add("hier_us_" + key, static_cast<double>(hier) / 1000.0);
  }
  table.print(std::cout);
}

// One run with the per-collective and per-transport counter tables, so the
// phase split (intra over IPC, leader over the HCA) is visible at a glance.
void show_coll_stats() {
  mpisim::Cluster cluster(
      config(4, core::CollSelect::kAuto, core::TransportSelect::kAuto));
  cluster.run([](mpisim::Context& ctx) {
    std::vector<double> in(32768, 1.0);
    std::vector<double> out(32768);
    ctx.comm.allreduce_sum(in.data(), out.data(), 32768);
    auto dt = mpisim::Datatype::byte();
    dt.commit();
    std::vector<std::byte> mine(65536);
    std::vector<std::byte> all(65536 * kRanks);
    ctx.comm.allgather(mine.data(), 65536, dt, all.data());
    ctx.comm.barrier();
  });
  std::cout << "\nPer-collective counters (coll_select=auto, 8 ranks on 2 "
               "nodes):\n";
  cluster.print_stats(std::cout);
}

}  // namespace

int main() {
  bench::banner(
      "Two-level hierarchical collectives vs flat (8 ranks, blocked nodes)",
      "MVAPICH2-style shared-memory collectives over the transport seam");
  bench::JsonReport report("collectives");
  const std::vector<std::size_t> sizes{16,    64,     256,     1024,
                                       4096,  16384,  65536,   262144,
                                       1048576, 4194304};
  for (const int rpn : {2, 4}) {
    sweep(report, Op::kAllreduce, "allreduce", rpn, sizes);
    sweep(report, Op::kAllgather, "allgather", rpn, sizes);
  }
  show_coll_stats();
  report.write_and_note();
  std::cout << "\nExpected: the two-level variants beat the flat algorithms "
               "at every size.\nThe intra-node phases ride the lossless IPC "
               "channel instead of looping\nthrough the HCA, and the "
               "inter-node leg is striped across the members,\nso each "
               "fabric round carries 1/n of the bytes through n HCAs in "
               "parallel.\n(Flat with IPC-routed p2p already captures part "
               "of the win; the striping\nstill beats it once messages "
               "leave the latency regime.)\n";
  return 0;
}
