// Ablation: pipeline block (chunk) size sweep.
//
// Paper §IV-B: "we found 64KB to be the optimal block size in our
// experimental environment" — the (n+2)*T(N/n) pipeline model trades
// per-chunk overhead against overlap depth. This bench regenerates that
// tuning curve for 1 MB and 4 MB vector messages; the shape should be
// U-like (or monotone-flat past the knee) with the knee near 64 KB.
#include <iostream>
#include <vector>

#include "apps/reporting.hpp"
#include "apps/vector_bench.hpp"
#include "bench_util.hpp"

namespace bench = mv2gnc::bench;
namespace apps = mv2gnc::apps;
namespace mpisim = mv2gnc::mpisim;
namespace sim = mv2gnc::sim;

int main() {
  bench::banner("Pipeline chunk-size tuning sweep",
                "Section IV-B (64 KB optimal block size)");
  const std::vector<std::size_t> chunks = {8u << 10, 16u << 10, 32u << 10,
                                           64u << 10, 128u << 10, 256u << 10,
                                           512u << 10, 1u << 20};
  apps::Table table("MV2-GPU-NC one-way vector latency vs chunk size",
                    {"chunk", "1M msg (us)", "4M msg (us)"});
  for (std::size_t chunk : chunks) {
    mpisim::ClusterConfig cfg;
    // Pin the chunk: with the default chunk_select=model the library would
    // pick its own block size and the sweep would be flat.
    cfg.tunables.chunk_select = mv2gnc::core::ChunkSelect::kFixed;
    cfg.tunables.chunk_bytes = chunk;
    const sim::SimTime t1m = apps::measure_vector_latency(
        apps::VectorMethod::kMv2GpuNc, (1u << 20) / 4, 3, cfg);
    const sim::SimTime t4m = apps::measure_vector_latency(
        apps::VectorMethod::kMv2GpuNc, (4u << 20) / 4, 3, cfg);
    table.add_row({apps::format_bytes(chunk), apps::format_us(t1m),
                   apps::format_us(t4m)});
  }
  {
    // Reference row: what the (n+2)*T(N/n) model picks on its own.
    mpisim::ClusterConfig cfg;
    const sim::SimTime t1m = apps::measure_vector_latency(
        apps::VectorMethod::kMv2GpuNc, (1u << 20) / 4, 3, cfg);
    const sim::SimTime t4m = apps::measure_vector_latency(
        apps::VectorMethod::kMv2GpuNc, (4u << 20) / 4, 3, cfg);
    table.add_row({"model", apps::format_us(t1m), apps::format_us(t4m)});
  }
  table.print(std::cout);
  std::cout << "\nThe knee should sit near the paper's 64 KB optimum; the\n"
               "cost-model row should match or beat the best fixed chunk.\n";
  return 0;
}
