// OSU-style microbenchmark sweep for the simulated cluster: latency,
// bandwidth and bi-bandwidth for host-to-host and GPU-to-GPU contiguous
// buffers. Not a paper table — this is the measurement substrate (§V cites
// the OSU micro-benchmarks) plus a sanity panel for the cost model.
#include <iostream>
#include <vector>

#include "apps/osu.hpp"
#include "apps/reporting.hpp"
#include "bench_util.hpp"

namespace apps = mv2gnc::apps;
namespace bench = mv2gnc::bench;
using apps::BufferPlacement;

int main() {
  bench::banner("OSU-style micro-benchmarks (contiguous buffers)",
                "measurement substrate of Section V");
  {
    apps::Table table("osu_latency (us, one-way)",
                      {"size", "H-H", "D-D"});
    for (std::size_t b : {64u, 1024u, 16384u, 262144u, 4194304u}) {
      table.add_row(
          {apps::format_bytes(b),
           apps::format_us(apps::osu_latency(BufferPlacement::kHost, b, 5, {})),
           apps::format_us(
               apps::osu_latency(BufferPlacement::kDevice, b, 5, {}))});
    }
    table.print(std::cout);
  }
  {
    apps::Table table("osu_bw / osu_bibw (MB/s, window 16)",
                      {"size", "H-H bw", "D-D bw", "D-D bibw"});
    for (std::size_t b : {16384u, 262144u, 1048576u, 4194304u}) {
      char hh[32], dd[32], bb[32];
      std::snprintf(hh, sizeof(hh), "%.0f",
                    apps::osu_bandwidth(BufferPlacement::kHost, b, 16, 3, {}));
      std::snprintf(dd, sizeof(dd), "%.0f",
                    apps::osu_bandwidth(BufferPlacement::kDevice, b, 16, 3, {}));
      std::snprintf(bb, sizeof(bb), "%.0f",
                    apps::osu_bibandwidth(BufferPlacement::kDevice, b, 16, 3,
                                          {}));
      table.add_row({apps::format_bytes(b), hh, dd, bb});
    }
    table.print(std::cout);
  }
  std::cout << "\nExpected: H-H approaches the QDR 3.2 GB/s link rate; D-D "
               "tracks it closely thanks to the staging pipeline.\n";
  return 0;
}
