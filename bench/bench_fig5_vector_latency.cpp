// Reproduces paper Figure 5: GPU-to-GPU vector communication latency for
// the three methods of Figure 4, small (16 B - 4 KB) and large (4 KB -
// 4 MB) messages, on a 1x2 process grid with 4-byte chunks.
//
// Expected shape: MV2-GPU-NC ~= the hand-written pipeline, both far below
// Cpy2D+Send; ~88% improvement at 4 MB.
#include <iostream>
#include <vector>

#include "apps/reporting.hpp"
#include "apps/vector_bench.hpp"
#include "bench_util.hpp"

namespace bench = mv2gnc::bench;
namespace apps = mv2gnc::apps;
namespace sim = mv2gnc::sim;
using apps::VectorMethod;

namespace {

void sweep(const char* title, const std::vector<std::size_t>& sizes,
           int iterations) {
  apps::Table table(title,
                    {"size", "Cpy2D+Send (us)",
                     "Cpy2DAsync+CpyAsync+Isend (us)", "MV2-GPU-NC (us)",
                     "improvement"});
  for (std::size_t s : sizes) {
    const std::size_t rows = s / 4;
    const sim::SimTime blocking = apps::measure_vector_latency(
        VectorMethod::kCpy2DSend, rows, iterations, {});
    const sim::SimTime hand = apps::measure_vector_latency(
        VectorMethod::kCpy2DAsyncIsend, rows, iterations, {});
    const sim::SimTime nc = apps::measure_vector_latency(
        VectorMethod::kMv2GpuNc, rows, iterations, {});
    table.add_row({apps::format_bytes(s), apps::format_us(blocking),
                   apps::format_us(hand), apps::format_us(nc),
                   apps::format_improvement(static_cast<double>(blocking),
                                            static_cast<double>(nc))});
  }
  table.print(std::cout);
}

}  // namespace

int main() {
  bench::banner("Vector communication latency (1x2 grid, 4 B chunks)",
                "Figure 5 (a) small and (b) large messages");
  sweep("Figure 5(a): small messages", {16, 64, 256, 1024, 4096}, 5);
  sweep("Figure 5(b): large messages",
        {4096, 16384, 65536, 262144, 1048576, 4194304}, 3);
  std::cout << "\nPaper: up to 88% latency improvement for the 4 MB vector.\n";
  return 0;
}
