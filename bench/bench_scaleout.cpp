// Many-rank scale-out: incast, alltoall and stencil halo at 64-512 ranks,
// full crossbar vs a 2:1-oversubscribed two-level fat tree. Two things are
// under test at once: the *model* (shared leaf/spine links make incast
// hot-spots and oversubscribed alltoalls slow down; nearest-neighbour halo
// traffic mostly does not) and the *simulator* (events/sec and wall-clock
// per virtual second from the engine's throughput counters — the raw-speed
// numbers that decide whether hundreds of ranks are tractable at all).
// `--smoke` runs the 64-rank column only and exits non-zero if contention
// is absent or any cell fails to complete — the CI scaleout_smoke target.
#include <cstdint>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "apps/reporting.hpp"
#include "bench_util.hpp"
#include "mpi/cluster.hpp"

namespace bench = mv2gnc::bench;
namespace apps = mv2gnc::apps;
namespace mpisim = mv2gnc::mpisim;
namespace netsim = mv2gnc::netsim;
namespace sim = mv2gnc::sim;

namespace {

// All three patterns use 32 KB messages — above the 8 KB eager threshold,
// so every payload takes the rendezvous/RDMA path whose wire time is long
// enough to back an oversubscribed uplink up. (Eager-sized alltoalls are
// self-throttling: the pairwise exchange synchronizes each phase, and a
// sub-microsecond wire time never outlasts the per-phase handshake, so a
// 2:1 fabric shows almost no queueing on them.)
constexpr std::size_t kIncastBytes = 32 * 1024;
constexpr std::size_t kAlltoallBytes = 32 * 1024;
constexpr std::size_t kHaloBytes = 32 * 1024;
constexpr int kHaloIters = 2;

enum class Workload { kIncast, kAlltoall, kHalo };

const char* workload_name(Workload w) {
  switch (w) {
    case Workload::kIncast: return "incast";
    case Workload::kAlltoall: return "alltoall";
    default: return "halo";
  }
}

mpisim::ClusterConfig make_config(int ranks, bool fat_tree) {
  mpisim::ClusterConfig cfg;
  cfg.ranks = ranks;
  if (fat_tree) {
    // 8 endpoints per edge switch with half as many uplinks: the classic
    // cost-reduced 2:1 fabric.
    cfg.topology = netsim::FabricTopology::fat_tree(8, 2.0);
  }
  return cfg;
}

// Largest power-of-two px with px <= sqrt-ish of n, giving the px x py
// process grid the halo workload runs on (n is always a power of two here).
void grid_dims(int n, int& px, int& py) {
  px = 1;
  while (px * px < n) px *= 2;
  py = n / px;
}

void run_workload(Workload w, mpisim::Context& ctx) {
  auto dt = mpisim::Datatype::byte();
  dt.commit();
  switch (w) {
    case Workload::kIncast: {
      // Everyone fires one rendezvous message at rank 0 simultaneously —
      // the many-to-one pattern that funnels through a single down-link
      // on a fat tree.
      if (ctx.rank == 0) {
        std::vector<std::byte> rx(
            kIncastBytes * static_cast<std::size_t>(ctx.size - 1));
        std::vector<mpisim::Request> reqs;
        reqs.reserve(static_cast<std::size_t>(ctx.size - 1));
        for (int src = 1; src < ctx.size; ++src) {
          reqs.push_back(ctx.comm.irecv(
              rx.data() + kIncastBytes * static_cast<std::size_t>(src - 1),
              static_cast<int>(kIncastBytes), dt, src, 7));
        }
        ctx.comm.waitall(reqs);
      } else {
        std::vector<std::byte> tx(kIncastBytes, std::byte{0x5A});
        ctx.comm.send(tx.data(), static_cast<int>(kIncastBytes), dt, 0, 7);
      }
      break;
    }
    case Workload::kAlltoall: {
      std::vector<std::byte> tx(
          kAlltoallBytes * static_cast<std::size_t>(ctx.size),
          std::byte{0x3C});
      std::vector<std::byte> rx(tx.size());
      ctx.comm.alltoall(tx.data(), rx.data(),
                        static_cast<int>(kAlltoallBytes), dt);
      break;
    }
    case Workload::kHalo: {
      // Periodic 4-neighbour exchange on a px x py grid. Row-mates share a
      // leaf when px == leaf_ports (east/west stay switch-local) but
      // north/south always cross leaves, so even this "nice" pattern leans
      // on the uplinks — just with far fewer flows per link than alltoall.
      int px = 0;
      int py = 0;
      grid_dims(ctx.size, px, py);
      const int row = ctx.rank / px;
      const int col = ctx.rank % px;
      const int east = row * px + (col + 1) % px;
      const int west = row * px + (col - 1 + px) % px;
      const int north = ((row + 1) % py) * px + col;
      const int south = ((row - 1 + py) % py) * px + col;
      std::vector<std::byte> tx(kHaloBytes, std::byte{0x7E});
      std::vector<std::byte> rx(kHaloBytes * 4);
      for (int it = 0; it < kHaloIters; ++it) {
        std::vector<mpisim::Request> reqs;
        reqs.reserve(8);
        const int n = static_cast<int>(kHaloBytes);
        reqs.push_back(ctx.comm.irecv(rx.data(), n, dt, west, 0));
        reqs.push_back(ctx.comm.irecv(rx.data() + kHaloBytes, n, dt, east, 1));
        reqs.push_back(
            ctx.comm.irecv(rx.data() + 2 * kHaloBytes, n, dt, south, 2));
        reqs.push_back(
            ctx.comm.irecv(rx.data() + 3 * kHaloBytes, n, dt, north, 3));
        reqs.push_back(ctx.comm.isend(tx.data(), n, dt, east, 0));
        reqs.push_back(ctx.comm.isend(tx.data(), n, dt, west, 1));
        reqs.push_back(ctx.comm.isend(tx.data(), n, dt, north, 2));
        reqs.push_back(ctx.comm.isend(tx.data(), n, dt, south, 3));
        ctx.comm.waitall(reqs);
      }
      break;
    }
  }
}

struct CellResult {
  sim::SimTime elapsed = 0;
  std::uint64_t events = 0;
  double wall_s = 0.0;
  double events_per_s = 0.0;
  double wall_per_virtual_s = 0.0;
};

std::string cell_key(Workload w, int ranks, bool fat_tree) {
  return std::string(workload_name(w)) + "_" + (fat_tree ? "fat2" : "xbar") +
         "_r" + std::to_string(ranks);
}

CellResult run_cell(bench::JsonReport& report, Workload w, int ranks,
                    bool fat_tree, bool print_links) {
  mpisim::Cluster cluster(make_config(ranks, fat_tree));
  cluster.run([&](mpisim::Context& ctx) { run_workload(w, ctx); });
  CellResult res;
  res.elapsed = cluster.elapsed();
  sim::Engine& e = cluster.engine();
  res.events = e.events_executed();
  res.wall_s = e.run_wall_seconds();
  res.events_per_s = e.events_per_wall_second();
  res.wall_per_virtual_s = e.wall_per_virtual_second();
  const std::string key = cell_key(w, ranks, fat_tree);
  report.add(key + "_us", static_cast<double>(res.elapsed) / 1000.0);
  bench::add_engine_throughput(report, key, e);
  if (print_links) {
    std::cout << "\nPer-link fabric stats, " << workload_name(w) << " at "
              << ranks << " ranks (fat tree, 2:1 oversubscription):\n";
    cluster.print_stats(std::cout);
  }
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--smoke") smoke = true;
  }
  bench::banner(
      smoke ? "Scale-out smoke: 64 ranks, crossbar vs 2:1 fat tree"
            : "Scale-out: 64-512 ranks, crossbar vs 2:1 fat tree",
      "switch/link contention beyond the paper's 8-node testbed; engine "
      "events/sec at many-rank scale");
  bench::JsonReport report(smoke ? "scaleout_smoke" : "scaleout");

  const std::vector<int> rank_counts =
      smoke ? std::vector<int>{64} : std::vector<int>{64, 128, 256, 512};
  const int print_ranks = smoke ? 64 : 256;

  bool contention_seen_everywhere = true;
  for (const Workload w : {Workload::kIncast, Workload::kAlltoall,
                           Workload::kHalo}) {
    apps::Table table(
        std::string(workload_name(w)) +
            (w == Workload::kIncast
                 ? " (32 KB to rank 0 from every rank)"
                 : w == Workload::kAlltoall
                       ? " (32 KB per pair, pairwise exchange)"
                       : " (4 x 32 KB halo, 2 iters)"),
        {"ranks", "crossbar (us)", "fat-tree 2:1 (us)", "slowdown",
         "xbar Mev/s", "fat Mev/s"});
    for (const int ranks : rank_counts) {
      const CellResult xbar =
          run_cell(report, w, ranks, /*fat_tree=*/false, false);
      const bool print_links =
          w == Workload::kAlltoall && ranks == print_ranks;
      const CellResult fat =
          run_cell(report, w, ranks, /*fat_tree=*/true, print_links);
      const double slowdown = xbar.elapsed > 0
                                  ? static_cast<double>(fat.elapsed) /
                                        static_cast<double>(xbar.elapsed)
                                  : 0.0;
      char slow[32];
      std::snprintf(slow, sizeof(slow), "%.2fx", slowdown);
      char xev[32];
      std::snprintf(xev, sizeof(xev), "%.2f", xbar.events_per_s / 1e6);
      char fev[32];
      std::snprintf(fev, sizeof(fev), "%.2f", fat.events_per_s / 1e6);
      table.add_row({std::to_string(ranks), apps::format_us(xbar.elapsed),
                     apps::format_us(fat.elapsed), slow, xev, fev});
      // The contention contract: the congested patterns must be measurably
      // slower on the oversubscribed fabric. Halo is reported but exempt —
      // how hard it leans on the uplinks depends on how the grid happens to
      // map onto leaves, which shifts with the rank count.
      if (w != Workload::kHalo && slowdown < 1.02) {
        contention_seen_everywhere = false;
        std::cout << "FAIL: " << workload_name(w) << " at " << ranks
                  << " ranks shows no fat-tree contention (slowdown "
                  << slow << ")\n";
      }
    }
    table.print(std::cout);
  }

  const std::string path = report.write();
  if (!path.empty()) std::cout << "\nJSON written to " << path << "\n";
  if (!contention_seen_everywhere) {
    std::cout << "\nscale-out bench FAILED: expected fat-tree contention "
                 "missing\n";
    return 1;
  }
  std::cout << "\nscale-out bench OK\n";
  return 0;
}
