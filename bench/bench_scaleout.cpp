// Many-rank scale-out: incast, alltoall and stencil halo at 64-512 ranks,
// full crossbar vs a 2:1-oversubscribed two-level fat tree. Two things are
// under test at once: the *model* (shared leaf/spine links make incast
// hot-spots and oversubscribed alltoalls slow down; nearest-neighbour halo
// traffic mostly does not) and the *simulator* (events/sec and wall-clock
// per virtual second from the engine's throughput counters — the raw-speed
// numbers that decide whether hundreds of ranks are tractable at all).
// `--smoke` runs the 64-rank column only and exits non-zero if contention
// is absent or any cell fails to complete — the CI scaleout_smoke target.
#include <cstdint>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include <algorithm>

#include "apps/reporting.hpp"
#include "bench_util.hpp"
#include "core/tunables.hpp"
#include "mpi/cluster.hpp"

namespace bench = mv2gnc::bench;
namespace apps = mv2gnc::apps;
namespace mpisim = mv2gnc::mpisim;
namespace netsim = mv2gnc::netsim;
namespace sim = mv2gnc::sim;

namespace {

// All three patterns use 32 KB messages — above the 8 KB eager threshold,
// so every payload takes the rendezvous/RDMA path whose wire time is long
// enough to back an oversubscribed uplink up. (Eager-sized alltoalls are
// self-throttling: the pairwise exchange synchronizes each phase, and a
// sub-microsecond wire time never outlasts the per-phase handshake, so a
// 2:1 fabric shows almost no queueing on them.)
constexpr std::size_t kIncastBytes = 32 * 1024;
constexpr std::size_t kAlltoallBytes = 32 * 1024;
constexpr std::size_t kHaloBytes = 32 * 1024;
constexpr int kHaloIters = 2;

enum class Workload { kIncast, kAlltoall, kHalo };

const char* workload_name(Workload w) {
  switch (w) {
    case Workload::kIncast: return "incast";
    case Workload::kAlltoall: return "alltoall";
    default: return "halo";
  }
}

mpisim::ClusterConfig make_config(int ranks, bool fat_tree) {
  mpisim::ClusterConfig cfg;
  cfg.ranks = ranks;
  if (fat_tree) {
    // 8 endpoints per edge switch with half as many uplinks: the classic
    // cost-reduced 2:1 fabric.
    cfg.topology = netsim::FabricTopology::fat_tree(8, 2.0);
  }
  return cfg;
}

// Largest power-of-two px with px <= sqrt-ish of n, giving the px x py
// process grid the halo workload runs on (n is always a power of two here).
void grid_dims(int n, int& px, int& py) {
  px = 1;
  while (px * px < n) px *= 2;
  py = n / px;
}

void run_workload(Workload w, mpisim::Context& ctx) {
  auto dt = mpisim::Datatype::byte();
  dt.commit();
  switch (w) {
    case Workload::kIncast: {
      // Everyone fires one rendezvous message at rank 0 simultaneously —
      // the many-to-one pattern that funnels through a single down-link
      // on a fat tree.
      if (ctx.rank == 0) {
        std::vector<std::byte> rx(
            kIncastBytes * static_cast<std::size_t>(ctx.size - 1));
        std::vector<mpisim::Request> reqs;
        reqs.reserve(static_cast<std::size_t>(ctx.size - 1));
        for (int src = 1; src < ctx.size; ++src) {
          reqs.push_back(ctx.comm.irecv(
              rx.data() + kIncastBytes * static_cast<std::size_t>(src - 1),
              static_cast<int>(kIncastBytes), dt, src, 7));
        }
        ctx.comm.waitall(reqs);
      } else {
        std::vector<std::byte> tx(kIncastBytes, std::byte{0x5A});
        ctx.comm.send(tx.data(), static_cast<int>(kIncastBytes), dt, 0, 7);
      }
      break;
    }
    case Workload::kAlltoall: {
      std::vector<std::byte> tx(
          kAlltoallBytes * static_cast<std::size_t>(ctx.size),
          std::byte{0x3C});
      std::vector<std::byte> rx(tx.size());
      ctx.comm.alltoall(tx.data(), rx.data(),
                        static_cast<int>(kAlltoallBytes), dt);
      break;
    }
    case Workload::kHalo: {
      // Periodic 4-neighbour exchange on a px x py grid. Row-mates share a
      // leaf when px == leaf_ports (east/west stay switch-local) but
      // north/south always cross leaves, so even this "nice" pattern leans
      // on the uplinks — just with far fewer flows per link than alltoall.
      int px = 0;
      int py = 0;
      grid_dims(ctx.size, px, py);
      const int row = ctx.rank / px;
      const int col = ctx.rank % px;
      const int east = row * px + (col + 1) % px;
      const int west = row * px + (col - 1 + px) % px;
      const int north = ((row + 1) % py) * px + col;
      const int south = ((row - 1 + py) % py) * px + col;
      std::vector<std::byte> tx(kHaloBytes, std::byte{0x7E});
      std::vector<std::byte> rx(kHaloBytes * 4);
      for (int it = 0; it < kHaloIters; ++it) {
        std::vector<mpisim::Request> reqs;
        reqs.reserve(8);
        const int n = static_cast<int>(kHaloBytes);
        reqs.push_back(ctx.comm.irecv(rx.data(), n, dt, west, 0));
        reqs.push_back(ctx.comm.irecv(rx.data() + kHaloBytes, n, dt, east, 1));
        reqs.push_back(
            ctx.comm.irecv(rx.data() + 2 * kHaloBytes, n, dt, south, 2));
        reqs.push_back(
            ctx.comm.irecv(rx.data() + 3 * kHaloBytes, n, dt, north, 3));
        reqs.push_back(ctx.comm.isend(tx.data(), n, dt, east, 0));
        reqs.push_back(ctx.comm.isend(tx.data(), n, dt, west, 1));
        reqs.push_back(ctx.comm.isend(tx.data(), n, dt, north, 2));
        reqs.push_back(ctx.comm.isend(tx.data(), n, dt, south, 3));
        ctx.comm.waitall(reqs);
      }
      break;
    }
  }
}

struct CellResult {
  sim::SimTime elapsed = 0;
  std::uint64_t events = 0;
  double wall_s = 0.0;
  double events_per_s = 0.0;
  double wall_per_virtual_s = 0.0;
};

std::string cell_key(Workload w, int ranks, bool fat_tree) {
  return std::string(workload_name(w)) + "_" + (fat_tree ? "fat2" : "xbar") +
         "_r" + std::to_string(ranks);
}

CellResult run_cell(bench::JsonReport& report, Workload w, int ranks,
                    bool fat_tree, bool print_links) {
  mpisim::Cluster cluster(make_config(ranks, fat_tree));
  cluster.run([&](mpisim::Context& ctx) { run_workload(w, ctx); });
  CellResult res;
  res.elapsed = cluster.elapsed();
  sim::Engine& e = cluster.engine();
  res.events = e.events_executed();
  res.wall_s = e.run_wall_seconds();
  res.events_per_s = e.events_per_wall_second();
  res.wall_per_virtual_s = e.wall_per_virtual_second();
  const std::string key = cell_key(w, ranks, fat_tree);
  report.add(key + "_us", static_cast<double>(res.elapsed) / 1000.0);
  bench::add_engine_throughput(report, key, e);
  if (print_links) {
    std::cout << "\nPer-link fabric stats, " << workload_name(w) << " at "
              << ranks << " ranks (fat tree, 2:1 oversubscription):\n";
    cluster.print_stats(std::cout);
  }
  return res;
}

// ---------------------------------------------------------------------------
// Routing-mode x topology sweep (congestion-adaptive routing + ECN feedback)
// ---------------------------------------------------------------------------

// The sweep's hot-spot patterns differ from the main grid on purpose:
//  * incast stays the many-to-one funnel (D-mod-k's worst case: every flow
//    shares one spine), but
//  * the alltoall cell is an UNSYNCHRONIZED hot-spot storm — every rank
//    posts all of its isends at once (no pairwise-exchange phases) and the
//    targets are the ranks divisible by kStormStride. A *uniform* alltoall
//    is statically balanced under D-mod-k (dst % uplinks spreads evenly
//    when destinations are uniform), so it cannot separate the policies;
//    hot destinations all congruent mod the uplink count pin D-mod-k to
//    one spine per leaf while hash/adaptive still spread over all of them.
enum class HotSpot { kIncast, kStorm };

// Storm targets: every rank whose index is divisible by this. 8 matches
// the sweep's leaf_ports/group_size, so each edge switch (or dragonfly
// group) hosts exactly one hot rank, and every hot rank index is ≡ 0 mod
// the fat tree's 4 uplinks — D-mod-k's blind spot.
constexpr int kStormStride = 8;

const char* hotspot_name(HotSpot h) {
  return h == HotSpot::kIncast ? "incast" : "storm";
}

enum class SweepTopo { kXbar, kFat2, kDragonfly };

const char* sweep_topo_name(SweepTopo t) {
  switch (t) {
    case SweepTopo::kXbar: return "xbar";
    case SweepTopo::kFat2: return "fat2";
    default: return "dfly";
  }
}

const char* route_name(mv2gnc::core::RouteSelect r) {
  switch (r) {
    case mv2gnc::core::RouteSelect::kDmodK: return "dmodk";
    case mv2gnc::core::RouteSelect::kHash: return "hash";
    default: return "adaptive";
  }
}

void run_hotspot(HotSpot h, std::size_t bytes, mpisim::Context& ctx,
                 sim::SimTime stagger_ns = 0) {
  auto dt = mpisim::Datatype::byte();
  dt.commit();
  if (h == HotSpot::kIncast) {
    // Optional ramp: sender r joins at r * stagger_ns instead of everyone
    // bursting at t=0. The ECN cells need this — with a simultaneous
    // burst the peak queue forms from the very first credit windows,
    // before any ack (and thus any mark) has ever come back, so feedback
    // cannot shave a peak that is already history.
    if (stagger_ns > 0 && ctx.rank > 0) {
      ctx.engine->delay(stagger_ns * static_cast<sim::SimTime>(ctx.rank));
    }
    if (ctx.rank == 0) {
      std::vector<std::byte> rx(bytes * static_cast<std::size_t>(ctx.size - 1));
      std::vector<mpisim::Request> reqs;
      reqs.reserve(static_cast<std::size_t>(ctx.size - 1));
      for (int src = 1; src < ctx.size; ++src) {
        reqs.push_back(ctx.comm.irecv(
            rx.data() + bytes * static_cast<std::size_t>(src - 1),
            static_cast<int>(bytes), dt, src, 7));
      }
      ctx.comm.waitall(reqs);
    } else {
      std::vector<std::byte> tx(bytes, std::byte{0x5A});
      ctx.comm.send(tx.data(), static_cast<int>(bytes), dt, 0, 7);
    }
    return;
  }
  // Hot-spot storm: everyone fires at the ranks divisible by kStormStride,
  // all isends posted at once. One hot rank per edge switch (stride ==
  // leaf_ports), so the down-links stay spread and the congestion lands on
  // the uplink/spine choice the routing policy owns.
  std::vector<mpisim::Request> reqs;
  const bool hot = ctx.rank % kStormStride == 0;
  std::vector<std::byte> rx;
  if (hot) {
    rx.resize(bytes * static_cast<std::size_t>(ctx.size - 1));
    reqs.reserve(static_cast<std::size_t>(ctx.size - 1));
    for (int src = 0; src < ctx.size; ++src) {
      if (src == ctx.rank) continue;
      const int slot = src < ctx.rank ? src : src - 1;
      reqs.push_back(
          ctx.comm.irecv(rx.data() + bytes * static_cast<std::size_t>(slot),
                         static_cast<int>(bytes), dt, src, 9));
    }
  }
  std::vector<std::byte> tx(bytes, std::byte{0x3C});
  for (int peer = 0; peer < ctx.size; peer += kStormStride) {
    if (peer == ctx.rank) continue;
    reqs.push_back(ctx.comm.isend(tx.data(), static_cast<int>(bytes), dt,
                                  peer, 9));
  }
  ctx.comm.waitall(reqs);
}

struct SweepResult {
  sim::SimTime elapsed = 0;
  sim::SimTime peak_backlog = 0;
  std::uint64_t ecn_marks = 0;
};

SweepResult run_sweep_cell(bench::JsonReport& report, HotSpot h, int ranks,
                           SweepTopo topo, mv2gnc::core::RouteSelect route,
                           std::size_t bytes, sim::SimTime ecn_ns = 0,
                           sim::SimTime stagger_ns = 0) {
  mpisim::ClusterConfig cfg;
  cfg.ranks = ranks;
  if (topo == SweepTopo::kFat2) {
    cfg.topology = netsim::FabricTopology::fat_tree(8, 2.0);
  } else if (topo == SweepTopo::kDragonfly) {
    cfg.topology = netsim::FabricTopology::dragonfly(8);
  }
  cfg.tunables.route_select = route;
  cfg.tunables.ecn_backlog_ns = ecn_ns;
  mpisim::Cluster cluster(cfg);
  cluster.run([&](mpisim::Context& ctx) {
    run_hotspot(h, bytes, ctx, stagger_ns);
  });
  SweepResult res;
  res.elapsed = cluster.elapsed();
  for (const netsim::LinkStats& l : cluster.link_stats()) {
    if (l.peak_backlog > res.peak_backlog) res.peak_backlog = l.peak_backlog;
    res.ecn_marks += l.ecn_marks;
  }
  const std::string key = std::string(hotspot_name(h)) + "_" +
                          sweep_topo_name(topo) + "_" + route_name(route) +
                          (ecn_ns > 0 ? "_ecn" : "") + "_r" +
                          std::to_string(ranks);
  report.add(key + "_us", static_cast<double>(res.elapsed) / 1000.0);
  report.add(key + "_peak_backlog_us",
             static_cast<double>(res.peak_backlog) / 1000.0);
  report.add(key + "_ecn_marks", static_cast<double>(res.ecn_marks));
  bench::add_engine_throughput(report, key, cluster.engine());
  return res;
}

// Routing sweep: every (hot-spot, topology, route) cell, with the
// pass/fail contract that hash and adaptive strictly beat D-mod-k on the
// oversubscribed fat tree's hot-spots — plus an ECN on/off pair showing
// backlog-driven depth control shaves the peak link backlog.
bool run_routing_sweep(bench::JsonReport& report, int ranks) {
  bool ok = true;
  for (const HotSpot h : {HotSpot::kIncast, HotSpot::kStorm}) {
    apps::Table table(
        std::string("routing sweep: ") + hotspot_name(h) + " at " +
            std::to_string(ranks) + " ranks (32 KB rendezvous payloads)",
        {"topology", "dmodk (us)", "hash (us)", "adaptive (us)",
         "best-vs-dmodk"});
    for (const SweepTopo topo :
         {SweepTopo::kXbar, SweepTopo::kFat2, SweepTopo::kDragonfly}) {
      SweepResult by_route[3];
      int i = 0;
      for (const auto route :
           {mv2gnc::core::RouteSelect::kDmodK, mv2gnc::core::RouteSelect::kHash,
            mv2gnc::core::RouteSelect::kAdaptive}) {
        by_route[i++] = run_sweep_cell(report, h, ranks, topo, route,
                                       /*bytes=*/32 * 1024);
      }
      const double dmodk = static_cast<double>(by_route[0].elapsed);
      const double best = static_cast<double>(
          std::min(by_route[1].elapsed, by_route[2].elapsed));
      char gain[32];
      std::snprintf(gain, sizeof(gain), "%.2fx",
                    best > 0.0 ? dmodk / best : 0.0);
      table.add_row({sweep_topo_name(topo), apps::format_us(by_route[0].elapsed),
                     apps::format_us(by_route[1].elapsed),
                     apps::format_us(by_route[2].elapsed), gain});
      if (topo == SweepTopo::kFat2) {
        if (by_route[1].elapsed >= by_route[0].elapsed) {
          ok = false;
          std::cout << "FAIL: hash does not beat dmodk on fat-tree "
                    << hotspot_name(h) << " at " << ranks << " ranks\n";
        }
        if (by_route[2].elapsed >= by_route[0].elapsed) {
          ok = false;
          std::cout << "FAIL: adaptive does not beat dmodk on fat-tree "
                    << hotspot_name(h) << " at " << ranks << " ranks\n";
        }
      }
    }
    table.print(std::cout);
  }
  // ECN cell: long multi-chunk (4 MB = 64 chunk) incast. The depth starts
  // at the pool ceiling (32) under kFifo and the shrink is rate-limited to
  // about one halving per depth's worth of acks, so the transfer must be
  // long enough for repeated decrease to bite below the credit window of 8
  // — a 16-chunk message yields one halving and changes nothing.
  const int ecn_ranks = std::min(ranks, 64);
  const std::size_t kEcnBytes = 4 << 20;
  const sim::SimTime kEcnThreshold = 50'000;
  const sim::SimTime kEcnStagger = 50'000;  // one ~20us chunk every 50us/rank
  const SweepResult off = run_sweep_cell(
      report, HotSpot::kIncast, ecn_ranks, SweepTopo::kFat2,
      mv2gnc::core::RouteSelect::kDmodK, kEcnBytes, 0, kEcnStagger);
  const SweepResult on = run_sweep_cell(
      report, HotSpot::kIncast, ecn_ranks, SweepTopo::kFat2,
      mv2gnc::core::RouteSelect::kDmodK, kEcnBytes, kEcnThreshold,
      kEcnStagger);
  apps::Table ecn_table(
      "ECN backlog-driven depth control: 4 MB incast at " +
          std::to_string(ecn_ranks) + " ranks, fat-tree 2:1",
      {"ecn", "elapsed (us)", "peak link backlog (us)", "marks"});
  ecn_table.add_row({"off", apps::format_us(off.elapsed),
                     apps::format_us(off.peak_backlog),
                     std::to_string(off.ecn_marks)});
  ecn_table.add_row({"on", apps::format_us(on.elapsed),
                     apps::format_us(on.peak_backlog),
                     std::to_string(on.ecn_marks)});
  ecn_table.print(std::cout);
  if (on.ecn_marks == 0) {
    ok = false;
    std::cout << "FAIL: ECN threshold armed but no link ever marked\n";
  }
  if (on.peak_backlog >= off.peak_backlog) {
    ok = false;
    std::cout << "FAIL: ECN did not reduce peak link backlog ("
              << on.peak_backlog << " >= " << off.peak_backlog << " ns)\n";
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--smoke") smoke = true;
  }
  bench::banner(
      smoke ? "Scale-out smoke: 64 ranks, crossbar vs 2:1 fat tree"
            : "Scale-out: 64-512 ranks, crossbar vs 2:1 fat tree",
      "switch/link contention beyond the paper's 8-node testbed; engine "
      "events/sec at many-rank scale");
  bench::JsonReport report(smoke ? "scaleout_smoke" : "scaleout");

  const std::vector<int> rank_counts =
      smoke ? std::vector<int>{64} : std::vector<int>{64, 128, 256, 512};
  const int print_ranks = smoke ? 64 : 256;

  bool contention_seen_everywhere = true;
  for (const Workload w : {Workload::kIncast, Workload::kAlltoall,
                           Workload::kHalo}) {
    apps::Table table(
        std::string(workload_name(w)) +
            (w == Workload::kIncast
                 ? " (32 KB to rank 0 from every rank)"
                 : w == Workload::kAlltoall
                       ? " (32 KB per pair, pairwise exchange)"
                       : " (4 x 32 KB halo, 2 iters)"),
        {"ranks", "crossbar (us)", "fat-tree 2:1 (us)", "slowdown",
         "xbar Mev/s", "fat Mev/s"});
    for (const int ranks : rank_counts) {
      const CellResult xbar =
          run_cell(report, w, ranks, /*fat_tree=*/false, false);
      const bool print_links =
          w == Workload::kAlltoall && ranks == print_ranks;
      const CellResult fat =
          run_cell(report, w, ranks, /*fat_tree=*/true, print_links);
      const double slowdown = xbar.elapsed > 0
                                  ? static_cast<double>(fat.elapsed) /
                                        static_cast<double>(xbar.elapsed)
                                  : 0.0;
      char slow[32];
      std::snprintf(slow, sizeof(slow), "%.2fx", slowdown);
      char xev[32];
      std::snprintf(xev, sizeof(xev), "%.2f", xbar.events_per_s / 1e6);
      char fev[32];
      std::snprintf(fev, sizeof(fev), "%.2f", fat.events_per_s / 1e6);
      table.add_row({std::to_string(ranks), apps::format_us(xbar.elapsed),
                     apps::format_us(fat.elapsed), slow, xev, fev});
      // The contention contract: the congested patterns must be measurably
      // slower on the oversubscribed fabric. Halo is reported but exempt —
      // how hard it leans on the uplinks depends on how the grid happens to
      // map onto leaves, which shifts with the rank count.
      if (w != Workload::kHalo && slowdown < 1.02) {
        contention_seen_everywhere = false;
        std::cout << "FAIL: " << workload_name(w) << " at " << ranks
                  << " ranks shows no fat-tree contention (slowdown "
                  << slow << ")\n";
      }
    }
    table.print(std::cout);
  }

  // Congestion-adaptive routing + ECN sweep. Runs after (and prints after)
  // the classic grid, so the byte-identical baseline of the cells above is
  // preserved verbatim.
  bench::JsonReport routing_report("routing");
  const bool routing_ok = run_routing_sweep(routing_report, smoke ? 64 : 256);
  routing_report.write_and_note();

  report.write_and_note();
  if (!routing_ok) {
    std::cout << "\nscale-out bench FAILED: routing/ECN contract broken\n";
    return 1;
  }
  if (!contention_seen_everywhere) {
    std::cout << "\nscale-out bench FAILED: expected fat-tree contention "
                 "missing\n";
    return 1;
  }
  std::cout << "\nscale-out bench OK\n";
  return 0;
}
