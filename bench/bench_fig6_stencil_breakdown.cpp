// Reproduces paper Figure 6: dimension-wise communication breakdown of
// Stencil2D (Def variant) at rank 1 on a 2x4 process grid with an
// 8K x 8K single-precision tile per process.
//
// Rank 1 sits in the top row with south, west and east neighbours.
// Expected shape: the east/west *cuda* components (strided staging across
// PCIe) dominate; mpi components are comparatively small.
#include <iostream>

#include "apps/reporting.hpp"
#include "apps/stencil2d.hpp"
#include "bench_util.hpp"

namespace bench = mv2gnc::bench;
namespace apps = mv2gnc::apps;
namespace mpisim = mv2gnc::mpisim;
namespace sim = mv2gnc::sim;

int main() {
  bench::banner("Stencil2D dimension-wise communication breakdown (rank 1)",
                "Figure 6 (2x4 grid, 8K x 8K single precision)");
  apps::StencilConfig cfg;
  cfg.proc_rows = 2;
  cfg.proc_cols = 4;
  cfg.local_rows = 8192;
  cfg.local_cols = 8192;
  cfg.iterations = 20;
  cfg.variant = apps::StencilConfig::Variant::kDef;
  cfg.trace_dirs = true;

  mpisim::Cluster cluster(
      mpisim::ClusterConfig{.ranks = cfg.ranks(), .trace_enabled = true});
  cluster.run([&](mpisim::Context& ctx) { apps::run_stencil(ctx, cfg); });

  auto& tr = cluster.trace();
  apps::Table table("Time at rank 1 over " + std::to_string(cfg.iterations) +
                        " iterations",
                    {"component", "time (us)"});
  for (const char* cat :
       {"south_mpi", "west_mpi", "east_mpi", "south_cuda", "west_cuda",
        "east_cuda"}) {
    table.add_row({cat, apps::format_us(tr.total(1, cat))});
  }
  table.print(std::cout);
  const double cuda_total = sim::to_us(tr.total(1, "south_cuda")) +
                            sim::to_us(tr.total(1, "west_cuda")) +
                            sim::to_us(tr.total(1, "east_cuda"));
  const double mpi_total = sim::to_us(tr.total(1, "south_mpi")) +
                           sim::to_us(tr.total(1, "west_mpi")) +
                           sim::to_us(tr.total(1, "east_mpi"));
  std::cout << "\ncuda total: " << cuda_total << " us, mpi total: "
            << mpi_total << " us\n"
            << "Paper shape: non-contiguous device<->host staging (east/west"
               " cuda) dominates.\n";
  return 0;
}
