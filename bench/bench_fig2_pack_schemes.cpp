// Reproduces paper Figure 2: non-contiguous data pack performance for the
// three staging schemes, small (16 B - 4 KB) and large (4 KB - 4 MB)
// message ranges. 4-byte rows throughout (the paper's float chunks).
//
// Expected shape: D2D2H nc2c2c wins for everything above ~64 B; at 4 MB it
// costs ~4.8% of D2H nc2nc.
#include <iostream>
#include <vector>

#include "apps/reporting.hpp"
#include "bench_util.hpp"
#include "core/gpu_staging.hpp"
#include "core/msg_view.hpp"
#include "mpi/datatype.hpp"

namespace bench = mv2gnc::bench;
namespace apps = mv2gnc::apps;
namespace core = mv2gnc::core;
namespace sim = mv2gnc::sim;
namespace cusim = mv2gnc::cusim;
using mv2gnc::mpisim::Datatype;

namespace {

sim::SimTime measure(core::PackScheme scheme, std::size_t msg_bytes) {
  sim::SimTime elapsed = 0;
  bench::run_single_gpu([&](sim::Engine& eng, cusim::CudaContext& ctx) {
    const int rows = static_cast<int>(msg_bytes / 4);
    constexpr int kStride = 2;  // floats: 8-byte pitch
    auto dtype = Datatype::vector(rows, 1, kStride, Datatype::float32());
    dtype.commit();
    void* dev = ctx.malloc(static_cast<std::size_t>(rows) * kStride * 4);
    auto msg = core::MsgView::make(dev, 1, dtype, ctx.device().registry());
    std::vector<std::byte> host(static_cast<std::size_t>(dtype.extent()) + 64);
    const sim::SimTime t0 = eng.now();
    core::stage_to_host(ctx, scheme, msg, host.data());
    elapsed = eng.now() - t0;
    ctx.free(dev);
  });
  return elapsed;
}

void sweep(const char* title, const std::vector<std::size_t>& sizes) {
  apps::Table table(title, {"size", "D2H nc2c (us)", "D2H nc2nc (us)",
                            "D2D2H nc2c2c (us)"});
  for (std::size_t s : sizes) {
    table.add_row({apps::format_bytes(s),
                   apps::format_us(measure(core::PackScheme::kD2H_nc2c, s)),
                   apps::format_us(measure(core::PackScheme::kD2H_nc2nc, s)),
                   apps::format_us(
                       measure(core::PackScheme::kD2D2H_nc2c2c, s))});
  }
  table.print(std::cout);
}

}  // namespace

int main() {
  bench::banner("Non-contiguous data pack performance",
                "Figure 2 (a) small and (b) large messages");
  sweep("Figure 2(a): small messages",
        {16, 64, 256, 1024, 4096});
  sweep("Figure 2(b): large messages",
        {4096, 16384, 65536, 262144, 1048576, 4194304});
  const double nc2nc =
      static_cast<double>(measure(core::PackScheme::kD2H_nc2nc, 4194304));
  const double off =
      static_cast<double>(measure(core::PackScheme::kD2D2H_nc2c2c, 4194304));
  std::cout << "\nD2D2H/nc2nc ratio at 4 MB: " << (off / nc2nc * 100.0)
            << "% (paper: 4.8%)\n";
  return 0;
}
