// Ablation: eager/rendezvous switch-over point.
//
// MVAPICH2 tunes the eager threshold per fabric; this sweep shows where
// the copy-through-payload eager path stops paying off against the
// RTS/CTS rendezvous for GPU-resident strided messages, justifying the
// 8 KB default in Tunables.
#include <iostream>
#include <vector>

#include "apps/reporting.hpp"
#include "apps/vector_bench.hpp"
#include "bench_util.hpp"

namespace bench = mv2gnc::bench;
namespace apps = mv2gnc::apps;
namespace mpisim = mv2gnc::mpisim;
namespace sim = mv2gnc::sim;

int main() {
  bench::banner("Eager-threshold tuning sweep",
                "protocol tunable (MVAPICH2 practice, not a paper figure)");
  const std::vector<std::size_t> thresholds = {0, 1024, 4096, 8192, 16384,
                                               65536};
  const std::vector<std::size_t> sizes = {512, 2048, 8192, 32768};
  std::vector<std::string> cols{"msg size"};
  for (auto t : thresholds) cols.push_back("thr " + apps::format_bytes(t));
  apps::Table table("MV2-GPU-NC one-way vector latency (us) vs eager threshold",
                    cols);
  for (std::size_t msg : sizes) {
    std::vector<std::string> row{apps::format_bytes(msg)};
    for (std::size_t thr : thresholds) {
      mpisim::ClusterConfig cfg;
      cfg.tunables.eager_threshold = thr;
      row.push_back(apps::format_us(apps::measure_vector_latency(
          apps::VectorMethod::kMv2GpuNc, msg / 4, 5, cfg)));
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  std::cout << "\nExpected: small messages prefer eager (payload copy beats "
               "the RTS/CTS round trip);\nlarge strided messages prefer the "
               "pipelined rendezvous.\n";
  return 0;
}
