// Reproduces the motivating measurement of paper §I-A: the cost of the
// three options for moving a 4 KB non-contiguous vector out of GPU memory.
// Paper values (Tesla C2050): (a) 200 us, (b) 281 us, (c) 35 us.
#include <iostream>
#include <vector>

#include "apps/reporting.hpp"
#include "bench_util.hpp"
#include "core/gpu_staging.hpp"
#include "core/msg_view.hpp"
#include "mpi/datatype.hpp"

namespace bench = mv2gnc::bench;
namespace apps = mv2gnc::apps;
namespace core = mv2gnc::core;
namespace sim = mv2gnc::sim;
namespace cusim = mv2gnc::cusim;
using mv2gnc::mpisim::Datatype;

int main() {
  bench::banner("Non-contiguous staging options at 4 KB",
                "Section I-A (options a/b/c)");
  apps::Table table("Cost of moving a 4 KB vector (1024 x 4 B) to host",
                    {"option", "scheme", "time (us)", "paper (us)"});
  const struct {
    const char* option;
    const char* name;
    core::PackScheme scheme;
    const char* paper;
  } rows[] = {
      {"(a)", "cudaMemcpy2D nc->nc (no pack)", core::PackScheme::kD2H_nc2nc,
       "200"},
      {"(b)", "cudaMemcpy2D nc->c (pack into host)",
       core::PackScheme::kD2H_nc2c, "281"},
      {"(c)", "pack inside device + cudaMemcpy (D2D2H)",
       core::PackScheme::kD2D2H_nc2c2c, "35"},
  };
  for (const auto& r : rows) {
    sim::SimTime elapsed = 0;
    bench::run_single_gpu([&](sim::Engine& eng, cusim::CudaContext& ctx) {
      constexpr int kRows = 1024;
      constexpr int kStride = 2;  // floats
      auto dtype = Datatype::vector(kRows, 1, kStride, Datatype::float32());
      dtype.commit();
      void* dev = ctx.malloc(kRows * kStride * sizeof(float));
      auto msg = core::MsgView::make(dev, 1, dtype, ctx.device().registry());
      // nc2nc leaves the host image strided: size the buffer by extent.
      std::vector<std::byte> host(
          static_cast<std::size_t>(dtype.extent()) + 64);
      const sim::SimTime t0 = eng.now();
      core::stage_to_host(ctx, r.scheme, msg, host.data());
      elapsed = eng.now() - t0;
      ctx.free(dev);
    });
    table.add_row({r.option, r.name, apps::format_us(elapsed), r.paper});
  }
  table.print(std::cout);
  std::cout << "\nThe factor between (b) and (c) should be ~8x.\n";
  return 0;
}
