// Reproduces paper Table I: code complexity of the Stencil2D halo-exchange
// main loop, existing (Def) vs MV2-GPU-NC.
//
// Two measurements, both taken from the shipped implementation rather than
// hard-coded:
//   * dynamic per-iteration call counts, via the library's API-call
//     instrumentation, measured at an interior rank (4 neighbours) of a
//     3x3 process grid;
//   * lines of code of the two exchange loops, parsed out of
//     src/apps/stencil2d.cpp (path baked in at configure time) between
//     marker comments.
//
// Paper: MPI calls identical (4 Irecv, 4 Send, 2 Waitall); cudaMemcpy
// 4 -> 0 and cudaMemcpy2D 4 -> 0; 245 -> 158 lines (-36%).
#include <fstream>
#include <iostream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "apps/reporting.hpp"
#include "apps/stencil2d.hpp"
#include "bench_util.hpp"

#ifndef MV2GNC_STENCIL_SOURCE
#error "MV2GNC_STENCIL_SOURCE must be defined by the build"
#endif

namespace apps = mv2gnc::apps;
namespace bench = mv2gnc::bench;
namespace mpisim = mv2gnc::mpisim;

namespace {

struct DynamicCounts {
  std::uint64_t irecv = 0, send = 0, waitall = 0, memcpy = 0, memcpy2d = 0;
};

DynamicCounts measure(apps::StencilConfig::Variant variant) {
  apps::StencilConfig cfg;
  cfg.proc_rows = 3;
  cfg.proc_cols = 3;
  cfg.local_rows = 4096;  // halos > eager threshold, like the paper's runs
  cfg.local_cols = 4096;
  cfg.iterations = 2;
  cfg.variant = variant;
  DynamicCounts out;
  mpisim::Cluster cluster(mpisim::ClusterConfig{.ranks = cfg.ranks()});
  cluster.run([&](mpisim::Context& ctx) {
    ctx.comm.reset_api_stats();
    ctx.cuda->reset_call_counters();
    apps::run_stencil(ctx, cfg);
    if (ctx.rank == 4) {  // centre rank: north, south, west and east
      const auto& st = ctx.comm.api_stats();
      const auto iters = static_cast<std::uint64_t>(cfg.iterations);
      out.irecv = st.irecv / iters;
      out.send = st.send / iters;
      out.waitall = st.waitall / iters;
      out.memcpy = ctx.cuda->memcpy_calls() / iters;
      out.memcpy2d = ctx.cuda->memcpy2d_calls() / iters;
    }
  });
  return out;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

int region_loc(const std::string& text, const std::string& begin,
               const std::string& end) {
  const auto b = text.find(begin);
  const auto e = text.find(end);
  if (b == std::string::npos || e == std::string::npos || e < b) {
    throw std::runtime_error("markers not found: " + begin);
  }
  const std::string code = text.substr(b + begin.size(), e - b - begin.size());
  int loc = 0;
  std::istringstream is(code);
  std::string line;
  while (std::getline(is, line)) {
    const auto first = line.find_first_not_of(" \t");
    if (first == std::string::npos) continue;         // blank
    if (line.compare(first, 2, "//") == 0) continue;  // comment
    ++loc;
  }
  return loc;
}

}  // namespace

int main() {
  bench::banner("Stencil2D halo-exchange code complexity",
                "Table I (function calls and lines of code)");
  const DynamicCounts def = measure(apps::StencilConfig::Variant::kDef);
  const DynamicCounts nc = measure(apps::StencilConfig::Variant::kMv2GpuNc);

  apps::Table table("Main-loop complexity (per iteration, interior rank)",
                    {"metric", "Stencil2D-Def", "Stencil2D-MV2-GPU-NC",
                     "paper Def", "paper NC"});
  table.add_row({"MPI_Irecv", std::to_string(def.irecv),
                 std::to_string(nc.irecv), "4", "4"});
  table.add_row({"MPI_Send", std::to_string(def.send),
                 std::to_string(nc.send), "4", "4"});
  table.add_row({"MPI_Waitall", std::to_string(def.waitall),
                 std::to_string(nc.waitall), "2", "2"});
  table.add_row({"cudaMemcpy", std::to_string(def.memcpy),
                 std::to_string(nc.memcpy), "4", "0"});
  table.add_row({"cudaMemcpy2D", std::to_string(def.memcpy2d),
                 std::to_string(nc.memcpy2d), "4", "0"});

  const std::string src = slurp(MV2GNC_STENCIL_SOURCE);
  const int def_loc = region_loc(src, "// BEGIN-STENCIL2D-DEF-LOOP",
                                 "// END-STENCIL2D-DEF-LOOP");
  const int nc_loc = region_loc(src, "// BEGIN-STENCIL2D-NC-LOOP",
                                "// END-STENCIL2D-NC-LOOP");
  table.add_row({"lines of code (exchange loop)", std::to_string(def_loc),
                 std::to_string(nc_loc), "245", "158"});
  table.print(std::cout);
  std::cout << "\nLoC reduction: " << apps::format_improvement(def_loc, nc_loc)
            << " (paper: 36%)\n";
  return 0;
}
